//! Fault-injection campaign runner — the resilience layer exercised end to
//! end across the three paper applications.
//!
//! A campaign sweeps every [`FaultKind`] over a set of injection rates and
//! per-cell trial seeds (all derived deterministically from one campaign
//! seed), runs each trial through the fault-aware executors in
//! [`sf_fpga::resilient`], and classifies the outcome:
//!
//! * **watchdog** — the pipeline wedged (e.g. a dropped FIFO element starved
//!   the stages) and the cycle-budget watchdog reported a deadlock with a
//!   structured diagnosis.
//! * **checksum** — the run completed but the output is not bit-exact
//!   against the golden [`sf_kernels::reference`] solve.
//! * **axi-retry** — an AXI burst failed and the retry/backoff model either
//!   recovered it in-run (extra cycles charged to the plan and telemetry) or
//!   exhausted the budget into a typed [`ExecError::AxiExhausted`].
//! * **divergence** — the run is numerically clean but the simulated cycle
//!   count diverges from the clean plan beyond the paper's ±15 % accuracy
//!   envelope.
//! * **abft** — under the `rollback` recovery mode, the block-checksum
//!   (ABFT) comparison at a checkpoint boundary caught silent data
//!   corruption and the run restored its last valid checkpoint
//!   ([`sf_fpga::recovery`]); only the lost passes are recomputed, and the
//!   checkpoint/replay overhead is charged to the plan and telemetry.
//!
//! Every *injected* fault must end the trial detected or recovered; a trial
//! that completes with a wrong answer and no detection would be a **silent
//! wrong** — the campaign reports zero of those by construction (the
//! checksum is always consulted) and [`CampaignReport::all_accounted`]
//! asserts it.
//!
//! Same campaign seed ⇒ byte-identical report (table and JSON): the sweep
//! order is fixed arrays, the per-trial seeds are pure functions of the
//! campaign seed, and no map with randomized iteration order is involved.

use serde::Serialize;
use sf_fpga::design::{synthesize, ExecMode, MemKind, Workload};
use sf_fpga::fast::{
    simulate_2d_recoverable_exec, simulate_2d_resilient_exec, simulate_3d_recoverable_exec,
    simulate_3d_resilient_exec,
};
use sf_fpga::{
    cycles, ExecEngine, ExecError, FaultInjector, FaultKind, FaultPlan, FpgaDevice, Recorder,
    RecoveryConfig, RecoveryPolicy, RecoveryStats, RetryPolicy,
};
use sf_kernels::{reference, rtm, Jacobi3D, Poisson2D, RtmParams, RtmStage, StencilSpec};
use sf_mesh::{norms, Batch2D, Batch3D};
use sf_telemetry::Divergence;

/// Seed for the deterministic input meshes (independent of the fault seed so
/// the golden solve is identical across every trial of an app).
const INPUT_SEED: u64 = 1_000_003;

/// Divergence tolerance in percent — the paper's model-accuracy envelope.
const DIVERGENCE_TOL_PCT: f64 = 15.0;

/// The three paper applications a campaign can target.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize)]
pub enum CampaignApp {
    /// 2D Poisson (5-point, 48×24 mesh, 12 iterations, V=8 p=4).
    Poisson2D,
    /// 3D Jacobi smoothing (7-point, 16×12×10 mesh, 6 iterations, V=8 p=3).
    Jacobi3D,
    /// 3D RTM forward pass (4 stages, 12×10×8 mesh, 4 iterations, V=1 p=3).
    Rtm3D,
}

impl CampaignApp {
    /// Every app, in campaign sweep order.
    pub const ALL: [CampaignApp; 3] =
        [CampaignApp::Poisson2D, CampaignApp::Jacobi3D, CampaignApp::Rtm3D];

    /// The fixed campaign configuration for this app: `(spec, v, p,
    /// workload)` — kept small so seeds and detections stay comparable
    /// across runs, and shared between the trial runners and the static
    /// pre-flight.
    pub fn campaign_params(&self) -> (StencilSpec, usize, usize, Workload) {
        match self {
            CampaignApp::Poisson2D => {
                (StencilSpec::poisson(), 8, 4, Workload::D2 { nx: 48, ny: 24, batch: 1 })
            }
            CampaignApp::Jacobi3D => {
                (StencilSpec::jacobi(), 8, 3, Workload::D3 { nx: 16, ny: 12, nz: 10, batch: 1 })
            }
            CampaignApp::Rtm3D => {
                (StencilSpec::rtm(), 1, 3, Workload::D3 { nx: 12, ny: 10, nz: 8, batch: 1 })
            }
        }
    }
}

/// Static pre-flight of every campaign design: the `sf-check` design-rule
/// report for each app's fixed configuration, in sweep order. The CLI
/// prints these before executing a single trial so any static diagnostic
/// can be correlated with the runtime detections that follow.
pub fn preflight(apps: &[CampaignApp]) -> Vec<(CampaignApp, sf_check::CheckReport)> {
    preflight_devices(apps, 1)
}

/// [`preflight`] against a sharded deployment: the same fixed campaign
/// designs, checked with `devices` accelerator cards so the SFC-X
/// sharding-legality rule participates (a campaign mesh whose outermost
/// extent shards narrower than the halo depth is rejected up front, before
/// a single trial executes).
pub fn preflight_devices(
    apps: &[CampaignApp],
    devices: usize,
) -> Vec<(CampaignApp, sf_check::CheckReport)> {
    let dev = FpgaDevice::u280();
    apps.iter()
        .map(|&app| {
            let (spec, v, p, wl) = app.campaign_params();
            let design = sf_check::Design::new(spec, v, p, ExecMode::Baseline, MemKind::Hbm, wl)
                .with_devices(devices);
            (app, sf_check::check(&dev, &design))
        })
        .collect()
}

impl CampaignApp {
    /// Stable lowercase name (CLI values, JSON keys).
    pub fn name(&self) -> &'static str {
        match self {
            CampaignApp::Poisson2D => "poisson2d",
            CampaignApp::Jacobi3D => "jacobi3d",
            CampaignApp::Rtm3D => "rtm3d",
        }
    }

    /// Parse a CLI app name; the bare workflow names are accepted as
    /// aliases (`poisson` ⇒ `poisson2d`, …).
    pub fn parse(s: &str) -> Option<CampaignApp> {
        match s {
            "poisson" | "poisson2d" => Some(CampaignApp::Poisson2D),
            "jacobi" | "jacobi3d" => Some(CampaignApp::Jacobi3D),
            "rtm" | "rtm3d" => Some(CampaignApp::Rtm3D),
            _ => None,
        }
    }
}

/// Campaign-level recovery strategy (the `--recovery` CLI flag).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize)]
pub enum RecoveryMode {
    /// Detected faults recover through a clean re-execution — the
    /// pre-checkpoint behavior, and the default (keeps existing campaign
    /// seeds and classifications byte-stable).
    Rerun,
    /// Detected faults roll back to the last valid checkpoint and replay
    /// only the lost passes ([`sf_fpga::recovery`]); silent corruption is
    /// caught in-run by the ABFT block-checksum check at each checkpoint
    /// boundary.
    Rollback,
}

impl RecoveryMode {
    /// Stable lowercase name (CLI values, JSON keys).
    pub fn name(&self) -> &'static str {
        match self {
            RecoveryMode::Rerun => "rerun",
            RecoveryMode::Rollback => "rollback",
        }
    }

    /// Parse a CLI recovery-mode name.
    pub fn parse(s: &str) -> Option<RecoveryMode> {
        match s {
            "rerun" => Some(RecoveryMode::Rerun),
            "rollback" => Some(RecoveryMode::Rollback),
            _ => None,
        }
    }
}

/// How a trial's fault was caught.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize)]
pub enum Detection {
    /// No fault was injected (the rate never rolled an injection) — nothing
    /// to detect.
    NotInjected,
    /// The watchdog tripped on a wedged pipeline (deadlock/livelock).
    Watchdog,
    /// Output checksum vs the golden reference caught corrupted numerics.
    Checksum,
    /// The AXI retry model surfaced the fault (recovered bursts counted in
    /// telemetry, or a typed `AxiExhausted` error).
    AxiRetry,
    /// The run was numerically clean but its cycle count left the ±15 %
    /// model-accuracy envelope.
    Divergence,
    /// The fault was absorbed by the architecture (e.g. a duplicated final
    /// element discarded at the full input FIFO) — output verified
    /// bit-exact.
    Masked,
    /// The ABFT block-checksum comparison at a checkpoint boundary caught
    /// silent data corruption (rollback campaigns only).
    Abft,
}

impl Detection {
    fn name(&self) -> &'static str {
        match self {
            Detection::NotInjected => "-",
            Detection::Watchdog => "watchdog",
            Detection::Checksum => "checksum",
            Detection::AxiRetry => "axi-retry",
            Detection::Divergence => "divergence",
            Detection::Masked => "masked",
            Detection::Abft => "abft",
        }
    }
}

/// How the trial ended up with a correct answer (or didn't).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize)]
pub enum Recovery {
    /// Nothing to recover: no injection, or the fault was masked.
    NotNeeded,
    /// The AXI retry/backoff absorbed the fault in-run; the output is
    /// bit-exact and the extra cycles are charged to the plan.
    InRun,
    /// A clean re-execution (fault injector disabled) reproduced the
    /// bit-exact golden answer.
    CleanRerun,
    /// The run rolled back to its last valid checkpoint, replayed the lost
    /// passes and finished bit-exact — no re-execution from scratch.
    Rollback,
    /// Even the clean re-execution failed — a genuine bug, never expected.
    Failed,
}

impl Recovery {
    fn name(&self) -> &'static str {
        match self {
            Recovery::NotNeeded => "-",
            Recovery::InRun => "in-run retry",
            Recovery::CleanRerun => "clean rerun",
            Recovery::Rollback => "rollback",
            Recovery::Failed => "FAILED",
        }
    }
}

/// One (app × kind × rate × trial) cell of the campaign.
#[derive(Clone, Debug, Serialize)]
pub struct Trial {
    /// Application name.
    pub app: &'static str,
    /// Fault kind name.
    pub kind: &'static str,
    /// Injection rate in parts per million of opportunities.
    pub rate_ppm: u32,
    /// The derived per-trial seed.
    pub seed: u64,
    /// Faults actually injected.
    pub injected: u64,
    /// Injection opportunities the run offered.
    pub opportunities: u64,
    /// How the fault was caught.
    pub detection: Detection,
    /// How a correct answer was (re-)established.
    pub recovery: Recovery,
    /// Completed with a wrong answer and no detection — must never happen.
    pub silent_wrong: bool,
    /// Checkpoint interval (passes) this trial ran under; 0 under the
    /// rerun recovery mode (no checkpoints taken).
    pub checkpoint_every: usize,
    /// Rollbacks performed in-run.
    pub rollbacks: u64,
    /// Silent corruptions the ABFT check caught.
    pub sdc_detected: u64,
    /// Cycles spent replaying rolled-back passes.
    pub recovery_cycles: u64,
    /// Total checkpoint + ABFT + replay cycles charged to the plan.
    pub overhead_cycles: u64,
    /// One-line diagnosis (watchdog trip, typed error, cycle delta …).
    pub detail: String,
}

/// Aggregate campaign statistics.
#[derive(Clone, Debug, Serialize)]
pub struct Summary {
    /// Total trials run.
    pub trials: usize,
    /// Trials where at least one fault was injected.
    pub injected: usize,
    /// Injected trials that were detected or recovered.
    pub detected_or_recovered: usize,
    /// Injected trials ending in a wrong answer with no detection.
    pub silent_wrong: usize,
    /// Trials whose recovery path failed.
    pub recovery_failed: usize,
    /// Silent corruptions caught in-run by the ABFT check (sum over
    /// trials).
    pub sdc_detected: u64,
    /// Trials that recovered in-run via checkpoint rollback.
    pub rollback_recovered: usize,
}

/// Full deterministic campaign output.
#[derive(Clone, Debug, Serialize)]
pub struct CampaignReport {
    /// The campaign seed all per-trial seeds derive from.
    pub campaign_seed: u64,
    /// Injection rates swept (parts per million).
    pub rates_ppm: Vec<u32>,
    /// Trials per (app × kind × rate) cell.
    pub trials_per_cell: u32,
    /// Recovery strategy the campaign ran under.
    pub recovery: RecoveryMode,
    /// Checkpoint intervals swept (rollback mode; empty under rerun).
    pub checkpoint_every: Vec<usize>,
    /// Every trial, in sweep order.
    pub trials: Vec<Trial>,
    /// Aggregate statistics.
    pub summary: Summary,
}

/// Campaign parameters; [`CampaignConfig::default`] matches the CI smoke job.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Seed every per-trial seed derives from.
    pub seed: u64,
    /// Injection rates to sweep (parts per million of opportunities).
    pub rates_ppm: Vec<u32>,
    /// Trials per (app × kind × rate) cell.
    pub trials_per_cell: u32,
    /// Worker threads for trial execution (`--jobs`). The report is
    /// byte-identical for any value: cells are enumerated in sweep order
    /// up front, fanned across workers, and classified in that same order.
    pub jobs: usize,
    /// Recovery strategy: `Rerun` (default, pre-checkpoint behavior) or
    /// `Rollback` (checkpoint/restore with ABFT detection).
    pub recovery: RecoveryMode,
    /// Checkpoint intervals (passes per checkpoint segment) to sweep under
    /// rollback; ignored under rerun. Each interval multiplies the cell
    /// count, so the overhead-vs-MTTR tradeoff is measured in one run.
    pub checkpoint_every: Vec<usize>,
    /// Rollback attempts allowed per checkpoint segment before the
    /// recoverable executor gives up with `RecoveryExhausted`.
    pub max_retries: u32,
    /// Fault kinds to sweep; per-kind trial seeds are derived from each
    /// kind's position in [`FaultKind::ALL`], so filtering the list never
    /// changes the seeds of the kinds that remain.
    pub kinds: Vec<FaultKind>,
    /// Execution engine the trials stream through (`--exec`). Both engines
    /// are bit-exact, so the campaign report (table and JSON) is
    /// byte-identical either way; `scalar` exists to cross-check the fast
    /// path.
    pub engine: ExecEngine,
    /// Device count (`--devices`): validated against the SFC-X
    /// sharding-legality rule by [`preflight_devices`] and stamped into
    /// run records. Trials stream each app's fixed single-card
    /// configuration regardless of the count, so per-trial fault seeds and
    /// classifications stay byte-comparable across deployments.
    pub devices: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 42,
            rates_ppm: vec![50_000, 1_000_000],
            trials_per_cell: 2,
            jobs: 1,
            recovery: RecoveryMode::Rerun,
            checkpoint_every: vec![4],
            max_retries: 3,
            kinds: FaultKind::ALL.to_vec(),
            engine: ExecEngine::default(),
            devices: 1,
        }
    }
}

/// How one trial executes: through the plain resilient path (detected
/// faults recover by clean re-execution) or through the recoverable path
/// (checkpoint/rollback with ABFT detection).
#[derive(Copy, Clone)]
enum TrialMode {
    Rerun,
    Rollback { checkpoint_every: usize, max_retries: u32 },
}

impl TrialMode {
    /// The recoverable executor's configuration, or `None` under rerun.
    fn rcfg(&self) -> Option<RecoveryConfig> {
        match *self {
            TrialMode::Rerun => None,
            TrialMode::Rollback { checkpoint_every, max_retries } => Some(RecoveryConfig {
                policy: RecoveryPolicy::Rollback { max_retries },
                checkpoint_every,
                ..RecoveryConfig::default()
            }),
        }
    }

    /// The interval recorded in the trial row (0 under rerun).
    fn interval(&self) -> usize {
        match *self {
            TrialMode::Rerun => 0,
            TrialMode::Rollback { checkpoint_every, .. } => checkpoint_every,
        }
    }
}

/// Raw observations from one resilient run, before classification.
struct TrialRun {
    /// `Ok(bit_exact_vs_golden, total_cycles)` or the typed error.
    result: Result<(bool, u64), ExecError>,
    injected: u64,
    opportunities: u64,
    clean_cycles: u64,
    axi_recovered: u64,
    /// Checkpoint/rollback accounting (all-zero under rerun).
    stats: RecoveryStats,
}

fn finish_trial(
    result: Result<(bool, u64), ExecError>,
    clean_cycles: u64,
    inj: &FaultInjector,
    rec: &Recorder,
    stats: RecoveryStats,
) -> TrialRun {
    TrialRun {
        result,
        injected: inj.injected(),
        opportunities: inj.opportunities(),
        clean_cycles,
        axi_recovered: rec.counter("fault.axi.recovered"),
        stats,
    }
}

fn poisson_trial(
    plan: FaultPlan,
    policy: &RetryPolicy,
    mode: TrialMode,
    engine: ExecEngine,
) -> TrialRun {
    let dev = FpgaDevice::u280();
    let (spec, v, p, wl) = CampaignApp::Poisson2D.campaign_params();
    let (Workload::D2 { nx, ny, .. } | Workload::D3 { nx, ny, .. }) = wl;
    let niter = 12usize;
    let ds = synthesize(&dev, &spec, v, p, ExecMode::Baseline, MemKind::Hbm, &wl)
        .expect("campaign poisson design is feasible");
    let input = Batch2D::<f32>::random(nx, ny, 1, INPUT_SEED, -1.0, 1.0);
    let golden = reference::run_batch_2d(&Poisson2D, &input, niter);
    let clean = cycles::plan(&dev, &ds, &wl, niter as u64).total_cycles;
    let mut inj = FaultInjector::new(plan);
    let mut rec = Recorder::enabled(ds.freq_mhz());
    let (r, stats) = match mode.rcfg() {
        None => {
            let r = simulate_2d_resilient_exec(
                engine,
                &dev,
                &ds,
                &[Poisson2D],
                &input,
                niter,
                &mut inj,
                policy,
                &mut rec,
            )
            .map(|(out, rep)| {
                (norms::bit_equal(out.as_slice(), golden.as_slice()), rep.total_cycles)
            });
            (r, RecoveryStats::default())
        }
        Some(rcfg) => {
            let mut stats = RecoveryStats::default();
            let r = simulate_2d_recoverable_exec(
                engine,
                &dev,
                &ds,
                &[Poisson2D],
                &input,
                niter,
                &mut inj,
                policy,
                &rcfg,
                &mut rec,
            )
            .map(|(out, rep, s)| {
                stats = s;
                (norms::bit_equal(out.as_slice(), golden.as_slice()), rep.total_cycles)
            });
            (r, stats)
        }
    };
    finish_trial(r, clean, &inj, &rec, stats)
}

fn jacobi_trial(
    plan: FaultPlan,
    policy: &RetryPolicy,
    mode: TrialMode,
    engine: ExecEngine,
) -> TrialRun {
    let dev = FpgaDevice::u280();
    let (spec, v, p, wl) = CampaignApp::Jacobi3D.campaign_params();
    let (nx, ny, nz) = match wl {
        Workload::D3 { nx, ny, nz, .. } => (nx, ny, nz),
        Workload::D2 { .. } => unreachable!("jacobi campaign workload is 3D"),
    };
    let niter = 6usize;
    let ds = synthesize(&dev, &spec, v, p, ExecMode::Baseline, MemKind::Hbm, &wl)
        .expect("campaign jacobi design is feasible");
    let k = Jacobi3D::smoothing();
    let input = Batch3D::<f32>::random(nx, ny, nz, 1, INPUT_SEED, -1.0, 1.0);
    let golden = reference::run_batch_3d(&k, &input, niter);
    let clean = cycles::plan(&dev, &ds, &wl, niter as u64).total_cycles;
    let mut inj = FaultInjector::new(plan);
    let mut rec = Recorder::enabled(ds.freq_mhz());
    let (r, stats) = match mode.rcfg() {
        None => {
            let r = simulate_3d_resilient_exec(
                engine,
                &dev,
                &ds,
                &[k],
                &input,
                niter,
                &mut inj,
                policy,
                &mut rec,
            )
            .map(|(out, rep)| {
                (norms::bit_equal(out.as_slice(), golden.as_slice()), rep.total_cycles)
            });
            (r, RecoveryStats::default())
        }
        Some(rcfg) => {
            let mut stats = RecoveryStats::default();
            let r = simulate_3d_recoverable_exec(
                engine,
                &dev,
                &ds,
                &[k],
                &input,
                niter,
                &mut inj,
                policy,
                &rcfg,
                &mut rec,
            )
            .map(|(out, rep, s)| {
                stats = s;
                (norms::bit_equal(out.as_slice(), golden.as_slice()), rep.total_cycles)
            });
            (r, stats)
        }
    };
    finish_trial(r, clean, &inj, &rec, stats)
}

fn rtm_trial(
    plan: FaultPlan,
    policy: &RetryPolicy,
    mode: TrialMode,
    engine: ExecEngine,
) -> TrialRun {
    let dev = FpgaDevice::u280();
    let (spec, v, p, wl) = CampaignApp::Rtm3D.campaign_params();
    let (nx, ny, nz) = match wl {
        Workload::D3 { nx, ny, nz, .. } => (nx, ny, nz),
        Workload::D2 { .. } => unreachable!("rtm campaign workload is 3D"),
    };
    let niter = 4usize;
    let ds = synthesize(&dev, &spec, v, p, ExecMode::Baseline, MemKind::Hbm, &wl)
        .expect("campaign rtm design is feasible");
    let (y, rho, mu) = rtm::demo_workload(nx, ny, nz);
    let packed = rtm::pack(&y, &rho, &mu);
    let input = Batch3D::from_meshes(std::slice::from_ref(&packed));
    let stages = RtmStage::pipeline(RtmParams::default());
    let golden = reference::run_stages_3d(&stages, &packed, niter);
    let clean = cycles::plan(&dev, &ds, &wl, niter as u64).total_cycles;
    let mut inj = FaultInjector::new(plan);
    let mut rec = Recorder::enabled(ds.freq_mhz());
    let (r, stats) = match mode.rcfg() {
        None => {
            let r = simulate_3d_resilient_exec(
                engine, &dev, &ds, &stages, &input, niter, &mut inj, policy, &mut rec,
            )
            .map(|(out, rep)| {
                (norms::bit_equal(out.mesh(0).as_slice(), golden.as_slice()), rep.total_cycles)
            });
            (r, RecoveryStats::default())
        }
        Some(rcfg) => {
            let mut stats = RecoveryStats::default();
            let r = simulate_3d_recoverable_exec(
                engine, &dev, &ds, &stages, &input, niter, &mut inj, policy, &rcfg, &mut rec,
            )
            .map(|(out, rep, s)| {
                stats = s;
                (norms::bit_equal(out.mesh(0).as_slice(), golden.as_slice()), rep.total_cycles)
            });
            (r, stats)
        }
    };
    finish_trial(r, clean, &inj, &rec, stats)
}

fn run_app(
    app: CampaignApp,
    plan: FaultPlan,
    policy: &RetryPolicy,
    mode: TrialMode,
    engine: ExecEngine,
) -> TrialRun {
    match app {
        CampaignApp::Poisson2D => poisson_trial(plan, policy, mode, engine),
        CampaignApp::Jacobi3D => jacobi_trial(plan, policy, mode, engine),
        CampaignApp::Rtm3D => rtm_trial(plan, policy, mode, engine),
    }
}

/// Derive a per-trial seed from the campaign seed and the cell coordinates
/// (SplitMix64 finalizer — decorrelates adjacent cells).
fn trial_seed(campaign: u64, app_idx: u64, kind_idx: u64, rate_ppm: u32, trial: u32) -> u64 {
    let mut z = campaign
        .wrapping_add(app_idx.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(kind_idx.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add((rate_ppm as u64) << 8)
        .wrapping_add(trial as u64 + 1);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Classify one trial. `clean_ok` is whether the app's clean (injector
/// disabled) run reproduced the golden answer — the recovery path for
/// detected faults.
fn classify(
    app: CampaignApp,
    run: &TrialRun,
    plan: &FaultPlan,
    clean_ok: bool,
    mode: TrialMode,
) -> Trial {
    let rerun = if clean_ok { Recovery::CleanRerun } else { Recovery::Failed };
    let (detection, recovery, silent_wrong, detail) = match &run.result {
        Err(ExecError::Deadlock(trip)) => (Detection::Watchdog, rerun, false, format!("{trip}")),
        Err(e @ ExecError::AxiExhausted { .. }) => {
            (Detection::AxiRetry, rerun, false, format!("{e}"))
        }
        Err(e @ ExecError::RecoveryExhausted { .. }) => {
            // The rollback budget ran out mid-run; the detection that kept
            // firing was the ABFT (or watchdog) check inside the
            // recoverable executor, and recovery falls back to the rerun.
            let det =
                if run.stats.sdc_detected > 0 { Detection::Abft } else { Detection::Watchdog };
            (det, rerun, false, format!("{e}"))
        }
        Err(e) => (Detection::Watchdog, rerun, false, format!("unexpected error: {e}")),
        Ok((bit_exact, total_cycles)) => {
            if *bit_exact && run.stats.rollbacks > 0 {
                // Checkpoint rollback recovered the run in-flight: the
                // detection is whichever monitor triggered the restore.
                let det =
                    if run.stats.sdc_detected > 0 { Detection::Abft } else { Detection::Watchdog };
                let d = format!(
                    "{} rollback(s), {} pass(es) replayed, +{} overhead cycles",
                    run.stats.rollbacks,
                    run.stats.batches_replayed,
                    run.stats.overhead_cycles()
                );
                (det, Recovery::Rollback, false, d)
            } else if !bit_exact {
                let d = format!("output differs from {} golden reference", app.name());
                (Detection::Checksum, rerun, false, d)
            } else if run.injected == 0 {
                (Detection::NotInjected, Recovery::NotNeeded, false, String::new())
            } else if run.axi_recovered > 0 {
                let div = Divergence::new(run.clean_cycles, *total_cycles);
                let det = if div.within(DIVERGENCE_TOL_PCT) {
                    Detection::AxiRetry
                } else {
                    Detection::Divergence
                };
                let d = format!(
                    "{} bursts retried, +{} cycles ({:+.2}%)",
                    run.axi_recovered,
                    total_cycles - run.clean_cycles,
                    div.pct()
                );
                (det, Recovery::InRun, false, d)
            } else {
                let d = "fault absorbed by the architecture; output bit-exact".to_string();
                (Detection::Masked, Recovery::NotNeeded, false, d)
            }
        }
    };
    Trial {
        app: app.name(),
        kind: plan.kind.name(),
        rate_ppm: plan.rate_ppm,
        seed: plan.seed,
        injected: run.injected,
        opportunities: run.opportunities,
        detection,
        recovery,
        silent_wrong,
        checkpoint_every: mode.interval(),
        rollbacks: run.stats.rollbacks,
        sdc_detected: run.stats.sdc_detected,
        recovery_cycles: run.stats.recovery_cycles,
        overhead_cycles: run.stats.overhead_cycles(),
        detail,
    }
}

/// One enumerated (app × kind × rate × interval × trial) cell, ready to
/// execute.
struct Cell {
    app: CampaignApp,
    plan: FaultPlan,
    clean_ok: bool,
    mode: TrialMode,
}

/// Run a deterministic fault campaign over `apps`.
///
/// Trials fan across `cfg.jobs` worker threads; each trial is an
/// independent resilient simulation keyed by its derived seed, so the
/// report (table and JSON) is byte-identical for any worker count.
pub fn run_campaign(apps: &[CampaignApp], cfg: &CampaignConfig) -> CampaignReport {
    let policy = RetryPolicy::default();
    // Recovery path shared by every trial of an app: the clean rerun
    // (injector disabled) must reproduce the golden answer. One run per
    // app — fanned across workers like the trials themselves.
    let clean_ok: Vec<bool> = sf_par::par_map(cfg.jobs, apps.to_vec(), |_, app| {
        let clean = run_app(
            app,
            FaultInjector::disabled().plan().to_owned(),
            &policy,
            TrialMode::Rerun,
            cfg.engine,
        );
        matches!(clean.result, Ok((true, _)))
    });
    // Under rollback the checkpoint intervals are swept as an extra cell
    // axis; under rerun there is a single interval-less pseudo-entry, so
    // the cell count and seed derivation match the pre-checkpoint runner.
    let intervals: Vec<Option<usize>> = match cfg.recovery {
        RecoveryMode::Rerun => vec![None],
        RecoveryMode::Rollback => cfg.checkpoint_every.iter().map(|&e| Some(e.max(1))).collect(),
    };
    // Enumerate every cell in the fixed sweep order, then execute them in
    // parallel; `par_map` returns results in enumeration order, so the
    // trial list (and everything derived from it) is schedule-independent.
    let mut cells = Vec::new();
    for (i, app) in apps.iter().enumerate() {
        let app_idx = CampaignApp::ALL.iter().position(|a| a == app).unwrap_or(0) as u64;
        for kind in &cfg.kinds {
            // Seeds key on the kind's position in the full catalogue, not
            // in the (possibly filtered) sweep list, so `--kind` filters
            // never change the seeds of the kinds that remain.
            let kind_idx = FaultKind::ALL.iter().position(|k| k == kind).unwrap_or(0) as u64;
            for &rate_ppm in &cfg.rates_ppm {
                for (ck_idx, &interval) in intervals.iter().enumerate() {
                    for t in 0..cfg.trials_per_cell {
                        // The interval term vanishes at index 0, so a
                        // single-interval rollback sweep (and every rerun
                        // sweep) keeps the historical per-kind seeds.
                        let seed = trial_seed(cfg.seed, app_idx, kind_idx, rate_ppm, t)
                            ^ (ck_idx as u64).wrapping_mul(0x9FB2_1C65_1E98_DF25);
                        // Stream/window faults inject at most once (a
                        // precise, attributable upset); AXI faults run
                        // unbounded so the retry model sees the full
                        // failure population.
                        let plan = match kind {
                            FaultKind::AxiDelay | FaultKind::AxiFail => {
                                FaultPlan { seed, kind: *kind, rate_ppm, max_injections: 0 }
                            }
                            _ => FaultPlan::single(seed, *kind, rate_ppm),
                        };
                        let mode = match interval {
                            None => TrialMode::Rerun,
                            Some(checkpoint_every) => TrialMode::Rollback {
                                checkpoint_every,
                                max_retries: cfg.max_retries,
                            },
                        };
                        cells.push(Cell { app: *app, plan, clean_ok: clean_ok[i], mode });
                    }
                }
            }
        }
    }
    let trials = sf_par::par_map(cfg.jobs, cells, |_, cell| {
        let run = run_app(cell.app, cell.plan, &policy, cell.mode, cfg.engine);
        classify(cell.app, &run, &cell.plan, cell.clean_ok, cell.mode)
    });
    let injected: Vec<&Trial> = trials.iter().filter(|t| t.injected > 0).collect();
    let summary = Summary {
        trials: trials.len(),
        injected: injected.len(),
        detected_or_recovered: injected
            .iter()
            .filter(|t| t.detection != Detection::NotInjected && t.recovery != Recovery::Failed)
            .count(),
        silent_wrong: trials.iter().filter(|t| t.silent_wrong).count(),
        recovery_failed: trials.iter().filter(|t| t.recovery == Recovery::Failed).count(),
        sdc_detected: trials.iter().map(|t| t.sdc_detected).sum(),
        rollback_recovered: trials.iter().filter(|t| t.recovery == Recovery::Rollback).count(),
    };
    CampaignReport {
        campaign_seed: cfg.seed,
        rates_ppm: cfg.rates_ppm.clone(),
        trials_per_cell: cfg.trials_per_cell,
        recovery: cfg.recovery,
        checkpoint_every: match cfg.recovery {
            RecoveryMode::Rerun => Vec::new(),
            RecoveryMode::Rollback => intervals.iter().map(|i| i.unwrap_or(1)).collect(),
        },
        trials,
        summary,
    }
}

impl CampaignReport {
    /// Every injected fault was detected or recovered and no trial ended in
    /// a silent wrong answer — the campaign's acceptance invariant.
    pub fn all_accounted(&self) -> bool {
        self.summary.silent_wrong == 0
            && self.summary.recovery_failed == 0
            && self.summary.detected_or_recovered == self.summary.injected
    }

    /// Render the campaign as a fixed-width table plus a summary block.
    pub fn render_table(&self) -> String {
        let mut s = String::new();
        let recovery = match self.recovery {
            RecoveryMode::Rerun => "rerun".to_string(),
            RecoveryMode::Rollback => {
                format!("rollback (checkpoint every {:?} passes)", self.checkpoint_every)
            }
        };
        s.push_str(&format!(
            "fault campaign: seed {} | rates {:?} ppm | {} trials/cell | recovery {}\n\n",
            self.campaign_seed, self.rates_ppm, self.trials_per_cell, recovery
        ));
        s.push_str(&format!(
            "{:<10} {:<13} {:>9} {:>20} {:>4} {:<11} {:<13} {}\n",
            "app", "fault", "rate_ppm", "seed", "inj", "detection", "recovery", "diagnosis"
        ));
        for t in &self.trials {
            let mut detail = t.detail.clone();
            if detail.len() > 60 {
                detail.truncate(57);
                detail.push_str("...");
            }
            s.push_str(&format!(
                "{:<10} {:<13} {:>9} {:>20} {:>4} {:<11} {:<13} {}\n",
                t.app,
                t.kind,
                t.rate_ppm,
                t.seed,
                t.injected,
                t.detection.name(),
                t.recovery.name(),
                detail
            ));
        }
        s.push_str(&format!(
            "\ntrials {} | injected {} | detected-or-recovered {} | silent wrong {} | recovery failures {}\n",
            self.summary.trials,
            self.summary.injected,
            self.summary.detected_or_recovered,
            self.summary.silent_wrong,
            self.summary.recovery_failed
        ));
        if self.recovery == RecoveryMode::Rollback {
            s.push_str(&format!(
                "sdc detected by ABFT {} | recovered in-run via rollback {}\n",
                self.summary.sdc_detected, self.summary.rollback_recovered
            ));
        }
        s.push_str(if self.all_accounted() {
            "every injected fault detected or recovered; zero silent wrong answers\n"
        } else {
            "CAMPAIGN FAILED: unaccounted faults (see table)\n"
        });
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> CampaignConfig {
        CampaignConfig {
            seed: 42,
            rates_ppm: vec![1_000_000],
            trials_per_cell: 1,
            jobs: 1,
            ..CampaignConfig::default()
        }
    }

    /// The acceptance configuration: SDC + FIFO-corruption kinds under the
    /// rollback policy at the default checkpoint interval.
    fn rollback_cfg() -> CampaignConfig {
        CampaignConfig {
            recovery: RecoveryMode::Rollback,
            checkpoint_every: vec![4],
            kinds: vec![
                FaultKind::BitFlip,
                FaultKind::FifoCorrupt,
                FaultKind::FifoDrop,
                FaultKind::FifoDup,
            ],
            ..quick_cfg()
        }
    }

    #[test]
    fn campaign_designs_pass_preflight() {
        // the campaign exercises *runtime* detection of injected faults;
        // its fixed designs must be statically clean so every diagnostic
        // the CLI prints afterwards is attributable to the injection
        for (app, rep) in preflight(&CampaignApp::ALL) {
            assert!(!rep.has_errors(), "{}: {}", app.name(), rep.render());
        }
    }

    #[test]
    fn app_names_parse_with_aliases() {
        assert_eq!(CampaignApp::parse("poisson2d"), Some(CampaignApp::Poisson2D));
        assert_eq!(CampaignApp::parse("poisson"), Some(CampaignApp::Poisson2D));
        assert_eq!(CampaignApp::parse("jacobi3d"), Some(CampaignApp::Jacobi3D));
        assert_eq!(CampaignApp::parse("rtm"), Some(CampaignApp::Rtm3D));
        assert_eq!(CampaignApp::parse("fft"), None);
        for a in CampaignApp::ALL {
            assert_eq!(CampaignApp::parse(a.name()), Some(a));
        }
    }

    #[test]
    fn poisson_campaign_accounts_for_every_fault() {
        let rep = run_campaign(&[CampaignApp::Poisson2D], &quick_cfg());
        assert_eq!(rep.summary.trials, FaultKind::ALL.len());
        assert!(rep.summary.injected > 0, "saturation rate must inject");
        assert!(rep.all_accounted(), "{}", rep.render_table());
        // At saturation every stream/window kind injects and is caught.
        for t in &rep.trials {
            assert!(t.injected > 0, "rate 1e6 ppm must inject for {}", t.kind);
            assert!(!t.silent_wrong);
        }
    }

    #[test]
    fn campaign_is_deterministic_for_a_seed() {
        let all = CampaignApp::ALL;
        let r1 = run_campaign(&all, &quick_cfg());
        let r2 = run_campaign(&all, &quick_cfg());
        assert_eq!(r1.render_table(), r2.render_table());
        assert_eq!(serde_json::to_string(&r1).unwrap(), serde_json::to_string(&r2).unwrap());
    }

    #[test]
    fn campaign_is_jobs_invariant() {
        let apps = [CampaignApp::Poisson2D, CampaignApp::Jacobi3D];
        let serial = run_campaign(&apps, &quick_cfg());
        for jobs in [2, 4] {
            let par = run_campaign(&apps, &CampaignConfig { jobs, ..quick_cfg() });
            assert_eq!(par.render_table(), serial.render_table(), "jobs={jobs}");
            assert_eq!(
                serde_json::to_string(&par).unwrap(),
                serde_json::to_string(&serial).unwrap(),
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn different_seeds_change_the_schedule() {
        let cfg_a = quick_cfg();
        let cfg_b = CampaignConfig { seed: 43, ..quick_cfg() };
        let r_a = run_campaign(&[CampaignApp::Poisson2D], &cfg_a);
        let r_b = run_campaign(&[CampaignApp::Poisson2D], &cfg_b);
        let seeds_a: Vec<u64> = r_a.trials.iter().map(|t| t.seed).collect();
        let seeds_b: Vec<u64> = r_b.trials.iter().map(|t| t.seed).collect();
        assert_ne!(seeds_a, seeds_b);
    }

    #[test]
    fn rollback_recovers_at_least_90pct_of_detected_faults() {
        // The ISSUE acceptance criterion: on the SDC + FIFO-corruption
        // campaign with `--recovery rollback --checkpoint-every 4`, at
        // least 90 % of injected-and-detected faults recover in-run via
        // checkpoint rollback (no clean rerun needed).
        let rep = run_campaign(&CampaignApp::ALL, &rollback_cfg());
        assert!(rep.all_accounted(), "{}", rep.render_table());
        let detected: Vec<&Trial> = rep
            .trials
            .iter()
            .filter(|t| {
                t.injected > 0 && !matches!(t.detection, Detection::NotInjected | Detection::Masked)
            })
            .collect();
        assert!(!detected.is_empty(), "campaign must detect faults:\n{}", rep.render_table());
        let rolled = detected.iter().filter(|t| t.recovery == Recovery::Rollback).count();
        assert!(
            rolled * 10 >= detected.len() * 9,
            "only {rolled}/{} detected faults recovered via rollback:\n{}",
            detected.len(),
            rep.render_table()
        );
        assert!(rep.summary.sdc_detected > 0, "ABFT must catch the bit-flips");
        assert_eq!(rep.summary.rollback_recovered, rolled);
        // Rolled-back trials expose the recovery accounting the report
        // layer aggregates.
        for t in detected.iter().filter(|t| t.recovery == Recovery::Rollback) {
            assert!(t.rollbacks > 0, "{t:?}");
            assert!(t.recovery_cycles > 0, "{t:?}");
            assert!(t.overhead_cycles >= t.recovery_cycles, "{t:?}");
            assert_eq!(t.checkpoint_every, 4, "{t:?}");
        }
    }

    #[test]
    fn rollback_campaign_is_deterministic_and_jobs_invariant() {
        let apps = [CampaignApp::Poisson2D];
        let r1 = run_campaign(&apps, &rollback_cfg());
        let r2 = run_campaign(&apps, &rollback_cfg());
        assert_eq!(r1.render_table(), r2.render_table());
        assert_eq!(serde_json::to_string(&r1).unwrap(), serde_json::to_string(&r2).unwrap());
        for jobs in [2, 4] {
            let par = run_campaign(&apps, &CampaignConfig { jobs, ..rollback_cfg() });
            assert_eq!(
                serde_json::to_string(&par).unwrap(),
                serde_json::to_string(&r1).unwrap(),
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn campaign_is_engine_invariant() {
        // `--exec scalar` and `--exec fast` must produce byte-identical
        // campaign reports — detections, seeds, cycle accounting, JSON.
        let apps = [CampaignApp::Poisson2D];
        let fast = run_campaign(&apps, &rollback_cfg());
        let scalar =
            run_campaign(&apps, &CampaignConfig { engine: ExecEngine::Scalar, ..rollback_cfg() });
        assert_eq!(fast.render_table(), scalar.render_table());
        assert_eq!(serde_json::to_string(&fast).unwrap(), serde_json::to_string(&scalar).unwrap());
    }

    #[test]
    fn checkpoint_interval_sweep_trades_overhead_for_recovery_time() {
        // A shorter interval loses fewer passes per rollback: the replay
        // (recovery) cycles of the interval-1 trial must undercut the
        // interval-4 trial for the same injected bit-flip.
        let cfg = CampaignConfig {
            recovery: RecoveryMode::Rollback,
            checkpoint_every: vec![1, 4],
            kinds: vec![FaultKind::BitFlip],
            ..quick_cfg()
        };
        let rep = run_campaign(&[CampaignApp::Poisson2D], &cfg);
        assert!(rep.all_accounted(), "{}", rep.render_table());
        assert_eq!(rep.summary.trials, 2);
        let short = rep.trials.iter().find(|t| t.checkpoint_every == 1).unwrap();
        let long = rep.trials.iter().find(|t| t.checkpoint_every == 4).unwrap();
        assert_eq!(short.recovery, Recovery::Rollback, "{}", rep.render_table());
        assert_eq!(long.recovery, Recovery::Rollback, "{}", rep.render_table());
        assert!(
            short.recovery_cycles < long.recovery_cycles,
            "interval 1 must replay fewer cycles than interval 4:\n{}",
            rep.render_table()
        );
    }

    #[test]
    fn axi_backoff_schedules_are_jobs_invariant() {
        // The retry/backoff schedule (per-burst attempts and backoff
        // cycles) is a pure function of the injector seed; fanning the
        // seed population across the worker pool must reproduce the
        // serial schedule element for element.
        use sf_fpga::{AxiVerdict, FaultInjector, FaultKind, FaultPlan, RetryPolicy};
        let seeds: Vec<u64> = (0u64..64).map(|i| 0x5EED ^ (i << 7)).collect();
        let schedule = |jobs: usize| -> Vec<Vec<(u32, u64)>> {
            sf_par::par_map(jobs, seeds.clone(), |_, seed| {
                let policy = RetryPolicy::default();
                let plan = FaultPlan {
                    seed,
                    kind: FaultKind::AxiFail,
                    rate_ppm: 500_000,
                    max_injections: 0,
                };
                let mut inj = FaultInjector::new(plan);
                (0..32)
                    .map(|burst| match inj.axi_burst(burst, &policy) {
                        AxiVerdict::Ok => (0, 0),
                        AxiVerdict::Recovered { attempts, extra_cycles } => {
                            (attempts, extra_cycles)
                        }
                        AxiVerdict::Exhausted { attempts } => (attempts, u64::MAX),
                    })
                    .collect()
            })
        };
        let serial = schedule(1);
        assert!(
            serial.iter().flatten().any(|&(a, _)| a > 0),
            "the seed population must exercise the retry model"
        );
        for jobs in [2, 4] {
            assert_eq!(schedule(jobs), serial, "jobs={jobs}");
        }
    }

    #[test]
    fn kind_filter_preserves_per_kind_seeds() {
        // Filtering the kind list must not renumber the surviving kinds'
        // seeds: a bit-flip-only campaign reproduces the bit-flip row of
        // the full sweep exactly.
        let full = run_campaign(&[CampaignApp::Poisson2D], &quick_cfg());
        let only = CampaignConfig { kinds: vec![FaultKind::BitFlip], ..quick_cfg() };
        let filtered = run_campaign(&[CampaignApp::Poisson2D], &only);
        assert_eq!(filtered.trials.len(), 1);
        let bitflip_full = full.trials.iter().find(|t| t.kind == "bitflip").unwrap();
        assert_eq!(filtered.trials[0].seed, bitflip_full.seed);
        assert_eq!(filtered.trials[0].detection, bitflip_full.detection);
    }

    #[test]
    fn expected_detectors_fire_per_kind() {
        let rep = run_campaign(&[CampaignApp::Jacobi3D], &quick_cfg());
        for t in &rep.trials {
            match FaultKind::parse(t.kind).unwrap() {
                FaultKind::FifoDrop => assert_eq!(t.detection, Detection::Watchdog, "{t:?}"),
                FaultKind::BitFlip | FaultKind::FifoCorrupt => {
                    assert_eq!(t.detection, Detection::Checksum, "{t:?}")
                }
                // AXI faults surface either through the retry counters
                // (typed exhaustion or in-run recovery within the model's
                // envelope) or, when the backoff blows the cycle budget,
                // through the divergence monitor.
                FaultKind::AxiDelay | FaultKind::AxiFail => assert!(
                    matches!(t.detection, Detection::AxiRetry | Detection::Divergence),
                    "{t:?}"
                ),
                // A dup on the final stream unit can be discarded at the
                // full FIFO — masked is legitimate there.
                FaultKind::FifoDup => {
                    assert!(matches!(t.detection, Detection::Checksum | Detection::Masked), "{t:?}")
                }
            }
        }
    }
}
