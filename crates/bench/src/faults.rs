//! Fault-injection campaign runner — the resilience layer exercised end to
//! end across the three paper applications.
//!
//! A campaign sweeps every [`FaultKind`] over a set of injection rates and
//! per-cell trial seeds (all derived deterministically from one campaign
//! seed), runs each trial through the fault-aware executors in
//! [`sf_fpga::resilient`], and classifies the outcome:
//!
//! * **watchdog** — the pipeline wedged (e.g. a dropped FIFO element starved
//!   the stages) and the cycle-budget watchdog reported a deadlock with a
//!   structured diagnosis.
//! * **checksum** — the run completed but the output is not bit-exact
//!   against the golden [`sf_kernels::reference`] solve.
//! * **axi-retry** — an AXI burst failed and the retry/backoff model either
//!   recovered it in-run (extra cycles charged to the plan and telemetry) or
//!   exhausted the budget into a typed [`ExecError::AxiExhausted`].
//! * **divergence** — the run is numerically clean but the simulated cycle
//!   count diverges from the clean plan beyond the paper's ±15 % accuracy
//!   envelope.
//!
//! Every *injected* fault must end the trial detected or recovered; a trial
//! that completes with a wrong answer and no detection would be a **silent
//! wrong** — the campaign reports zero of those by construction (the
//! checksum is always consulted) and [`CampaignReport::all_accounted`]
//! asserts it.
//!
//! Same campaign seed ⇒ byte-identical report (table and JSON): the sweep
//! order is fixed arrays, the per-trial seeds are pure functions of the
//! campaign seed, and no map with randomized iteration order is involved.

use serde::Serialize;
use sf_fpga::design::{synthesize, ExecMode, MemKind, Workload};
use sf_fpga::{
    cycles, simulate_2d_resilient, simulate_3d_resilient, ExecError, FaultInjector, FaultKind,
    FaultPlan, FpgaDevice, Recorder, RetryPolicy,
};
use sf_kernels::{reference, rtm, Jacobi3D, Poisson2D, RtmParams, RtmStage, StencilSpec};
use sf_mesh::{norms, Batch2D, Batch3D};
use sf_telemetry::Divergence;

/// Seed for the deterministic input meshes (independent of the fault seed so
/// the golden solve is identical across every trial of an app).
const INPUT_SEED: u64 = 1_000_003;

/// Divergence tolerance in percent — the paper's model-accuracy envelope.
const DIVERGENCE_TOL_PCT: f64 = 15.0;

/// The three paper applications a campaign can target.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize)]
pub enum CampaignApp {
    /// 2D Poisson (5-point, 48×24 mesh, 12 iterations, V=8 p=4).
    Poisson2D,
    /// 3D Jacobi smoothing (7-point, 16×12×10 mesh, 6 iterations, V=8 p=3).
    Jacobi3D,
    /// 3D RTM forward pass (4 stages, 12×10×8 mesh, 4 iterations, V=1 p=3).
    Rtm3D,
}

impl CampaignApp {
    /// Every app, in campaign sweep order.
    pub const ALL: [CampaignApp; 3] =
        [CampaignApp::Poisson2D, CampaignApp::Jacobi3D, CampaignApp::Rtm3D];

    /// The fixed campaign configuration for this app: `(spec, v, p,
    /// workload)` — kept small so seeds and detections stay comparable
    /// across runs, and shared between the trial runners and the static
    /// pre-flight.
    pub fn campaign_params(&self) -> (StencilSpec, usize, usize, Workload) {
        match self {
            CampaignApp::Poisson2D => {
                (StencilSpec::poisson(), 8, 4, Workload::D2 { nx: 48, ny: 24, batch: 1 })
            }
            CampaignApp::Jacobi3D => {
                (StencilSpec::jacobi(), 8, 3, Workload::D3 { nx: 16, ny: 12, nz: 10, batch: 1 })
            }
            CampaignApp::Rtm3D => {
                (StencilSpec::rtm(), 1, 3, Workload::D3 { nx: 12, ny: 10, nz: 8, batch: 1 })
            }
        }
    }
}

/// Static pre-flight of every campaign design: the `sf-check` design-rule
/// report for each app's fixed configuration, in sweep order. The CLI
/// prints these before executing a single trial so any static diagnostic
/// can be correlated with the runtime detections that follow.
pub fn preflight(apps: &[CampaignApp]) -> Vec<(CampaignApp, sf_check::CheckReport)> {
    let dev = FpgaDevice::u280();
    apps.iter()
        .map(|&app| {
            let (spec, v, p, wl) = app.campaign_params();
            let design = sf_check::Design::new(spec, v, p, ExecMode::Baseline, MemKind::Hbm, wl);
            (app, sf_check::check(&dev, &design))
        })
        .collect()
}

impl CampaignApp {
    /// Stable lowercase name (CLI values, JSON keys).
    pub fn name(&self) -> &'static str {
        match self {
            CampaignApp::Poisson2D => "poisson2d",
            CampaignApp::Jacobi3D => "jacobi3d",
            CampaignApp::Rtm3D => "rtm3d",
        }
    }

    /// Parse a CLI app name; the bare workflow names are accepted as
    /// aliases (`poisson` ⇒ `poisson2d`, …).
    pub fn parse(s: &str) -> Option<CampaignApp> {
        match s {
            "poisson" | "poisson2d" => Some(CampaignApp::Poisson2D),
            "jacobi" | "jacobi3d" => Some(CampaignApp::Jacobi3D),
            "rtm" | "rtm3d" => Some(CampaignApp::Rtm3D),
            _ => None,
        }
    }
}

/// How a trial's fault was caught.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize)]
pub enum Detection {
    /// No fault was injected (the rate never rolled an injection) — nothing
    /// to detect.
    NotInjected,
    /// The watchdog tripped on a wedged pipeline (deadlock/livelock).
    Watchdog,
    /// Output checksum vs the golden reference caught corrupted numerics.
    Checksum,
    /// The AXI retry model surfaced the fault (recovered bursts counted in
    /// telemetry, or a typed `AxiExhausted` error).
    AxiRetry,
    /// The run was numerically clean but its cycle count left the ±15 %
    /// model-accuracy envelope.
    Divergence,
    /// The fault was absorbed by the architecture (e.g. a duplicated final
    /// element discarded at the full input FIFO) — output verified
    /// bit-exact.
    Masked,
}

impl Detection {
    fn name(&self) -> &'static str {
        match self {
            Detection::NotInjected => "-",
            Detection::Watchdog => "watchdog",
            Detection::Checksum => "checksum",
            Detection::AxiRetry => "axi-retry",
            Detection::Divergence => "divergence",
            Detection::Masked => "masked",
        }
    }
}

/// How the trial ended up with a correct answer (or didn't).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize)]
pub enum Recovery {
    /// Nothing to recover: no injection, or the fault was masked.
    NotNeeded,
    /// The AXI retry/backoff absorbed the fault in-run; the output is
    /// bit-exact and the extra cycles are charged to the plan.
    InRun,
    /// A clean re-execution (fault injector disabled) reproduced the
    /// bit-exact golden answer.
    CleanRerun,
    /// Even the clean re-execution failed — a genuine bug, never expected.
    Failed,
}

impl Recovery {
    fn name(&self) -> &'static str {
        match self {
            Recovery::NotNeeded => "-",
            Recovery::InRun => "in-run retry",
            Recovery::CleanRerun => "clean rerun",
            Recovery::Failed => "FAILED",
        }
    }
}

/// One (app × kind × rate × trial) cell of the campaign.
#[derive(Clone, Debug, Serialize)]
pub struct Trial {
    /// Application name.
    pub app: &'static str,
    /// Fault kind name.
    pub kind: &'static str,
    /// Injection rate in parts per million of opportunities.
    pub rate_ppm: u32,
    /// The derived per-trial seed.
    pub seed: u64,
    /// Faults actually injected.
    pub injected: u64,
    /// Injection opportunities the run offered.
    pub opportunities: u64,
    /// How the fault was caught.
    pub detection: Detection,
    /// How a correct answer was (re-)established.
    pub recovery: Recovery,
    /// Completed with a wrong answer and no detection — must never happen.
    pub silent_wrong: bool,
    /// One-line diagnosis (watchdog trip, typed error, cycle delta …).
    pub detail: String,
}

/// Aggregate campaign statistics.
#[derive(Clone, Debug, Serialize)]
pub struct Summary {
    /// Total trials run.
    pub trials: usize,
    /// Trials where at least one fault was injected.
    pub injected: usize,
    /// Injected trials that were detected or recovered.
    pub detected_or_recovered: usize,
    /// Injected trials ending in a wrong answer with no detection.
    pub silent_wrong: usize,
    /// Trials whose recovery path failed.
    pub recovery_failed: usize,
}

/// Full deterministic campaign output.
#[derive(Clone, Debug, Serialize)]
pub struct CampaignReport {
    /// The campaign seed all per-trial seeds derive from.
    pub campaign_seed: u64,
    /// Injection rates swept (parts per million).
    pub rates_ppm: Vec<u32>,
    /// Trials per (app × kind × rate) cell.
    pub trials_per_cell: u32,
    /// Every trial, in sweep order.
    pub trials: Vec<Trial>,
    /// Aggregate statistics.
    pub summary: Summary,
}

/// Campaign parameters; [`CampaignConfig::default`] matches the CI smoke job.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Seed every per-trial seed derives from.
    pub seed: u64,
    /// Injection rates to sweep (parts per million of opportunities).
    pub rates_ppm: Vec<u32>,
    /// Trials per (app × kind × rate) cell.
    pub trials_per_cell: u32,
    /// Worker threads for trial execution (`--jobs`). The report is
    /// byte-identical for any value: cells are enumerated in sweep order
    /// up front, fanned across workers, and classified in that same order.
    pub jobs: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig { seed: 42, rates_ppm: vec![50_000, 1_000_000], trials_per_cell: 2, jobs: 1 }
    }
}

/// Raw observations from one resilient run, before classification.
struct TrialRun {
    /// `Ok(bit_exact_vs_golden, total_cycles)` or the typed error.
    result: Result<(bool, u64), ExecError>,
    injected: u64,
    opportunities: u64,
    clean_cycles: u64,
    axi_recovered: u64,
}

fn finish_trial(
    result: Result<(bool, u64), ExecError>,
    clean_cycles: u64,
    inj: &FaultInjector,
    rec: &Recorder,
) -> TrialRun {
    TrialRun {
        result,
        injected: inj.injected(),
        opportunities: inj.opportunities(),
        clean_cycles,
        axi_recovered: rec.counter("fault.axi.recovered"),
    }
}

fn poisson_trial(plan: FaultPlan, policy: &RetryPolicy) -> TrialRun {
    let dev = FpgaDevice::u280();
    let (spec, v, p, wl) = CampaignApp::Poisson2D.campaign_params();
    let (Workload::D2 { nx, ny, .. } | Workload::D3 { nx, ny, .. }) = wl;
    let niter = 12usize;
    let ds = synthesize(&dev, &spec, v, p, ExecMode::Baseline, MemKind::Hbm, &wl)
        .expect("campaign poisson design is feasible");
    let input = Batch2D::<f32>::random(nx, ny, 1, INPUT_SEED, -1.0, 1.0);
    let golden = reference::run_batch_2d(&Poisson2D, &input, niter);
    let clean = cycles::plan(&dev, &ds, &wl, niter as u64).total_cycles;
    let mut inj = FaultInjector::new(plan);
    let mut rec = Recorder::enabled(ds.freq_mhz());
    let r =
        simulate_2d_resilient(&dev, &ds, &[Poisson2D], &input, niter, &mut inj, policy, &mut rec)
            .map(|(out, rep)| {
                (norms::bit_equal(out.as_slice(), golden.as_slice()), rep.total_cycles)
            });
    finish_trial(r, clean, &inj, &rec)
}

fn jacobi_trial(plan: FaultPlan, policy: &RetryPolicy) -> TrialRun {
    let dev = FpgaDevice::u280();
    let (spec, v, p, wl) = CampaignApp::Jacobi3D.campaign_params();
    let (nx, ny, nz) = match wl {
        Workload::D3 { nx, ny, nz, .. } => (nx, ny, nz),
        Workload::D2 { .. } => unreachable!("jacobi campaign workload is 3D"),
    };
    let niter = 6usize;
    let ds = synthesize(&dev, &spec, v, p, ExecMode::Baseline, MemKind::Hbm, &wl)
        .expect("campaign jacobi design is feasible");
    let k = Jacobi3D::smoothing();
    let input = Batch3D::<f32>::random(nx, ny, nz, 1, INPUT_SEED, -1.0, 1.0);
    let golden = reference::run_batch_3d(&k, &input, niter);
    let clean = cycles::plan(&dev, &ds, &wl, niter as u64).total_cycles;
    let mut inj = FaultInjector::new(plan);
    let mut rec = Recorder::enabled(ds.freq_mhz());
    let r = simulate_3d_resilient(&dev, &ds, &[k], &input, niter, &mut inj, policy, &mut rec)
        .map(|(out, rep)| (norms::bit_equal(out.as_slice(), golden.as_slice()), rep.total_cycles));
    finish_trial(r, clean, &inj, &rec)
}

fn rtm_trial(plan: FaultPlan, policy: &RetryPolicy) -> TrialRun {
    let dev = FpgaDevice::u280();
    let (spec, v, p, wl) = CampaignApp::Rtm3D.campaign_params();
    let (nx, ny, nz) = match wl {
        Workload::D3 { nx, ny, nz, .. } => (nx, ny, nz),
        Workload::D2 { .. } => unreachable!("rtm campaign workload is 3D"),
    };
    let niter = 4usize;
    let ds = synthesize(&dev, &spec, v, p, ExecMode::Baseline, MemKind::Hbm, &wl)
        .expect("campaign rtm design is feasible");
    let (y, rho, mu) = rtm::demo_workload(nx, ny, nz);
    let packed = rtm::pack(&y, &rho, &mu);
    let input = Batch3D::from_meshes(std::slice::from_ref(&packed));
    let stages = RtmStage::pipeline(RtmParams::default());
    let golden = reference::run_stages_3d(&stages, &packed, niter);
    let clean = cycles::plan(&dev, &ds, &wl, niter as u64).total_cycles;
    let mut inj = FaultInjector::new(plan);
    let mut rec = Recorder::enabled(ds.freq_mhz());
    let r = simulate_3d_resilient(&dev, &ds, &stages, &input, niter, &mut inj, policy, &mut rec)
        .map(|(out, rep)| {
            (norms::bit_equal(out.mesh(0).as_slice(), golden.as_slice()), rep.total_cycles)
        });
    finish_trial(r, clean, &inj, &rec)
}

fn run_app(app: CampaignApp, plan: FaultPlan, policy: &RetryPolicy) -> TrialRun {
    match app {
        CampaignApp::Poisson2D => poisson_trial(plan, policy),
        CampaignApp::Jacobi3D => jacobi_trial(plan, policy),
        CampaignApp::Rtm3D => rtm_trial(plan, policy),
    }
}

/// Derive a per-trial seed from the campaign seed and the cell coordinates
/// (SplitMix64 finalizer — decorrelates adjacent cells).
fn trial_seed(campaign: u64, app_idx: u64, kind_idx: u64, rate_ppm: u32, trial: u32) -> u64 {
    let mut z = campaign
        .wrapping_add(app_idx.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(kind_idx.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add((rate_ppm as u64) << 8)
        .wrapping_add(trial as u64 + 1);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Classify one trial. `clean_ok` is whether the app's clean (injector
/// disabled) run reproduced the golden answer — the recovery path for
/// detected faults.
fn classify(app: CampaignApp, run: &TrialRun, plan: &FaultPlan, clean_ok: bool) -> Trial {
    let rerun = if clean_ok { Recovery::CleanRerun } else { Recovery::Failed };
    let (detection, recovery, silent_wrong, detail) = match &run.result {
        Err(ExecError::Deadlock(trip)) => (Detection::Watchdog, rerun, false, format!("{trip}")),
        Err(e @ ExecError::AxiExhausted { .. }) => {
            (Detection::AxiRetry, rerun, false, format!("{e}"))
        }
        Err(e) => (Detection::Watchdog, rerun, false, format!("unexpected error: {e}")),
        Ok((bit_exact, total_cycles)) => {
            if !bit_exact {
                let d = format!("output differs from {} golden reference", app.name());
                (Detection::Checksum, rerun, false, d)
            } else if run.injected == 0 {
                (Detection::NotInjected, Recovery::NotNeeded, false, String::new())
            } else if run.axi_recovered > 0 {
                let div = Divergence::new(run.clean_cycles, *total_cycles);
                let det = if div.within(DIVERGENCE_TOL_PCT) {
                    Detection::AxiRetry
                } else {
                    Detection::Divergence
                };
                let d = format!(
                    "{} bursts retried, +{} cycles ({:+.2}%)",
                    run.axi_recovered,
                    total_cycles - run.clean_cycles,
                    div.pct()
                );
                (det, Recovery::InRun, false, d)
            } else {
                let d = "fault absorbed by the architecture; output bit-exact".to_string();
                (Detection::Masked, Recovery::NotNeeded, false, d)
            }
        }
    };
    Trial {
        app: app.name(),
        kind: plan.kind.name(),
        rate_ppm: plan.rate_ppm,
        seed: plan.seed,
        injected: run.injected,
        opportunities: run.opportunities,
        detection,
        recovery,
        silent_wrong,
        detail,
    }
}

/// One enumerated (app × kind × rate × trial) cell, ready to execute.
struct Cell {
    app: CampaignApp,
    plan: FaultPlan,
    clean_ok: bool,
}

/// Run a deterministic fault campaign over `apps`.
///
/// Trials fan across `cfg.jobs` worker threads; each trial is an
/// independent resilient simulation keyed by its derived seed, so the
/// report (table and JSON) is byte-identical for any worker count.
pub fn run_campaign(apps: &[CampaignApp], cfg: &CampaignConfig) -> CampaignReport {
    let policy = RetryPolicy::default();
    // Recovery path shared by every trial of an app: the clean rerun
    // (injector disabled) must reproduce the golden answer. One run per
    // app — fanned across workers like the trials themselves.
    let clean_ok: Vec<bool> = sf_par::par_map(cfg.jobs, apps.to_vec(), |_, app| {
        let clean = run_app(app, FaultInjector::disabled().plan().to_owned(), &policy);
        matches!(clean.result, Ok((true, _)))
    });
    // Enumerate every cell in the fixed sweep order, then execute them in
    // parallel; `par_map` returns results in enumeration order, so the
    // trial list (and everything derived from it) is schedule-independent.
    let mut cells = Vec::new();
    for (i, app) in apps.iter().enumerate() {
        let app_idx = CampaignApp::ALL.iter().position(|a| a == app).unwrap_or(0) as u64;
        for (kind_idx, kind) in FaultKind::ALL.iter().enumerate() {
            for &rate_ppm in &cfg.rates_ppm {
                for t in 0..cfg.trials_per_cell {
                    let seed = trial_seed(cfg.seed, app_idx, kind_idx as u64, rate_ppm, t);
                    // Stream/window faults inject at most once (a precise,
                    // attributable upset); AXI faults run unbounded so the
                    // retry model sees the full failure population.
                    let plan = match kind {
                        FaultKind::AxiDelay | FaultKind::AxiFail => {
                            FaultPlan { seed, kind: *kind, rate_ppm, max_injections: 0 }
                        }
                        _ => FaultPlan::single(seed, *kind, rate_ppm),
                    };
                    cells.push(Cell { app: *app, plan, clean_ok: clean_ok[i] });
                }
            }
        }
    }
    let trials = sf_par::par_map(cfg.jobs, cells, |_, cell| {
        let run = run_app(cell.app, cell.plan, &policy);
        classify(cell.app, &run, &cell.plan, cell.clean_ok)
    });
    let injected: Vec<&Trial> = trials.iter().filter(|t| t.injected > 0).collect();
    let summary = Summary {
        trials: trials.len(),
        injected: injected.len(),
        detected_or_recovered: injected
            .iter()
            .filter(|t| t.detection != Detection::NotInjected && t.recovery != Recovery::Failed)
            .count(),
        silent_wrong: trials.iter().filter(|t| t.silent_wrong).count(),
        recovery_failed: trials.iter().filter(|t| t.recovery == Recovery::Failed).count(),
    };
    CampaignReport {
        campaign_seed: cfg.seed,
        rates_ppm: cfg.rates_ppm.clone(),
        trials_per_cell: cfg.trials_per_cell,
        trials,
        summary,
    }
}

impl CampaignReport {
    /// Every injected fault was detected or recovered and no trial ended in
    /// a silent wrong answer — the campaign's acceptance invariant.
    pub fn all_accounted(&self) -> bool {
        self.summary.silent_wrong == 0
            && self.summary.recovery_failed == 0
            && self.summary.detected_or_recovered == self.summary.injected
    }

    /// Render the campaign as a fixed-width table plus a summary block.
    pub fn render_table(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "fault campaign: seed {} | rates {:?} ppm | {} trials/cell\n\n",
            self.campaign_seed, self.rates_ppm, self.trials_per_cell
        ));
        s.push_str(&format!(
            "{:<10} {:<13} {:>9} {:>20} {:>4} {:<11} {:<13} {}\n",
            "app", "fault", "rate_ppm", "seed", "inj", "detection", "recovery", "diagnosis"
        ));
        for t in &self.trials {
            let mut detail = t.detail.clone();
            if detail.len() > 60 {
                detail.truncate(57);
                detail.push_str("...");
            }
            s.push_str(&format!(
                "{:<10} {:<13} {:>9} {:>20} {:>4} {:<11} {:<13} {}\n",
                t.app,
                t.kind,
                t.rate_ppm,
                t.seed,
                t.injected,
                t.detection.name(),
                t.recovery.name(),
                detail
            ));
        }
        s.push_str(&format!(
            "\ntrials {} | injected {} | detected-or-recovered {} | silent wrong {} | recovery failures {}\n",
            self.summary.trials,
            self.summary.injected,
            self.summary.detected_or_recovered,
            self.summary.silent_wrong,
            self.summary.recovery_failed
        ));
        s.push_str(if self.all_accounted() {
            "every injected fault detected or recovered; zero silent wrong answers\n"
        } else {
            "CAMPAIGN FAILED: unaccounted faults (see table)\n"
        });
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> CampaignConfig {
        CampaignConfig { seed: 42, rates_ppm: vec![1_000_000], trials_per_cell: 1, jobs: 1 }
    }

    #[test]
    fn campaign_designs_pass_preflight() {
        // the campaign exercises *runtime* detection of injected faults;
        // its fixed designs must be statically clean so every diagnostic
        // the CLI prints afterwards is attributable to the injection
        for (app, rep) in preflight(&CampaignApp::ALL) {
            assert!(!rep.has_errors(), "{}: {}", app.name(), rep.render());
        }
    }

    #[test]
    fn app_names_parse_with_aliases() {
        assert_eq!(CampaignApp::parse("poisson2d"), Some(CampaignApp::Poisson2D));
        assert_eq!(CampaignApp::parse("poisson"), Some(CampaignApp::Poisson2D));
        assert_eq!(CampaignApp::parse("jacobi3d"), Some(CampaignApp::Jacobi3D));
        assert_eq!(CampaignApp::parse("rtm"), Some(CampaignApp::Rtm3D));
        assert_eq!(CampaignApp::parse("fft"), None);
        for a in CampaignApp::ALL {
            assert_eq!(CampaignApp::parse(a.name()), Some(a));
        }
    }

    #[test]
    fn poisson_campaign_accounts_for_every_fault() {
        let rep = run_campaign(&[CampaignApp::Poisson2D], &quick_cfg());
        assert_eq!(rep.summary.trials, FaultKind::ALL.len());
        assert!(rep.summary.injected > 0, "saturation rate must inject");
        assert!(rep.all_accounted(), "{}", rep.render_table());
        // At saturation every stream/window kind injects and is caught.
        for t in &rep.trials {
            assert!(t.injected > 0, "rate 1e6 ppm must inject for {}", t.kind);
            assert!(!t.silent_wrong);
        }
    }

    #[test]
    fn campaign_is_deterministic_for_a_seed() {
        let all = CampaignApp::ALL;
        let r1 = run_campaign(&all, &quick_cfg());
        let r2 = run_campaign(&all, &quick_cfg());
        assert_eq!(r1.render_table(), r2.render_table());
        assert_eq!(serde_json::to_string(&r1).unwrap(), serde_json::to_string(&r2).unwrap());
    }

    #[test]
    fn campaign_is_jobs_invariant() {
        let apps = [CampaignApp::Poisson2D, CampaignApp::Jacobi3D];
        let serial = run_campaign(&apps, &quick_cfg());
        for jobs in [2, 4] {
            let par = run_campaign(&apps, &CampaignConfig { jobs, ..quick_cfg() });
            assert_eq!(par.render_table(), serial.render_table(), "jobs={jobs}");
            assert_eq!(
                serde_json::to_string(&par).unwrap(),
                serde_json::to_string(&serial).unwrap(),
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn different_seeds_change_the_schedule() {
        let cfg_a = quick_cfg();
        let cfg_b = CampaignConfig { seed: 43, ..quick_cfg() };
        let r_a = run_campaign(&[CampaignApp::Poisson2D], &cfg_a);
        let r_b = run_campaign(&[CampaignApp::Poisson2D], &cfg_b);
        let seeds_a: Vec<u64> = r_a.trials.iter().map(|t| t.seed).collect();
        let seeds_b: Vec<u64> = r_b.trials.iter().map(|t| t.seed).collect();
        assert_ne!(seeds_a, seeds_b);
    }

    #[test]
    fn expected_detectors_fire_per_kind() {
        let rep = run_campaign(&[CampaignApp::Jacobi3D], &quick_cfg());
        for t in &rep.trials {
            match FaultKind::parse(t.kind).unwrap() {
                FaultKind::FifoDrop => assert_eq!(t.detection, Detection::Watchdog, "{t:?}"),
                FaultKind::BitFlip | FaultKind::FifoCorrupt => {
                    assert_eq!(t.detection, Detection::Checksum, "{t:?}")
                }
                // AXI faults surface either through the retry counters
                // (typed exhaustion or in-run recovery within the model's
                // envelope) or, when the backoff blows the cycle budget,
                // through the divergence monitor.
                FaultKind::AxiDelay | FaultKind::AxiFail => assert!(
                    matches!(t.detection, Detection::AxiRetry | Detection::Divergence),
                    "{t:?}"
                ),
                // A dup on the final stream unit can be discarded at the
                // full FIFO — masked is legitimate there.
                FaultKind::FifoDup => {
                    assert!(matches!(t.detection, Detection::Checksum | Detection::Masked), "{t:?}")
                }
            }
        }
    }
}
