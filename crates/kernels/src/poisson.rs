//! Poisson-5pt-2D — the paper's first application (§V-A, eq. 16):
//!
//! ```text
//! U[i,j]' = 1/8 (U[i-1,j] + U[i+1,j] + U[i,j-1] + U[i,j+1]) + 1/2 U[i,j]
//! ```
//!
//! A 2nd-order (D = 2), 5-point star on scalar `f32` elements. Its op count
//! (4 adds, 2 muls) gives the paper's `G_dsp = 14`.

use crate::domain::{AbstractOp2D, AbstractValue};
use crate::op2d::StencilOp2D;
use crate::ops::OpCount;

/// The fixed-coefficient Poisson smoothing kernel of paper eq. (16).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Poisson2D;

impl Poisson2D {
    /// Stencil order `D` (rows of window buffering required).
    pub const ORDER: usize = 2;

    /// Arithmetic ops for one mesh-point update (→ `G_dsp` = 14).
    pub const fn op_count() -> OpCount {
        OpCount::new(4, 2, 0)
    }
}

impl AbstractOp2D for Poisson2D {
    /// The single copy of the update math, generic over the value domain.
    /// Evaluation order is fixed (left-to-right sums) so that every executor
    /// computes bit-identical results.
    #[inline]
    fn update<V: AbstractValue, F: Fn(i32, i32) -> V>(&self, at: &F) -> V {
        let sum = ((at(-1, 0) + at(1, 0)) + at(0, -1)) + at(0, 1);
        V::constant(0.125) * sum + V::constant(0.5) * at(0, 0)
    }
}

impl StencilOp2D<f32> for Poisson2D {
    fn radius(&self) -> usize {
        Self::ORDER / 2
    }

    #[inline]
    fn apply<F: Fn(i32, i32) -> f32>(&self, at: F) -> f32 {
        self.update::<f32, _>(&at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_field_is_fixed_point() {
        // 1/8 * 4c + 1/2 c = c
        let k = Poisson2D;
        let v = k.apply(|_, _| 3.25);
        assert_eq!(v, 3.25);
    }

    #[test]
    fn known_neighborhood() {
        let k = Poisson2D;
        // W=1, E=2, S=3, N=4, C=8 → 1/8*10 + 1/2*8 = 1.25 + 4 = 5.25
        let v = k.apply(|dx, dy| match (dx, dy) {
            (-1, 0) => 1.0,
            (1, 0) => 2.0,
            (0, -1) => 3.0,
            (0, 1) => 4.0,
            (0, 0) => 8.0,
            _ => panic!("unexpected access ({dx},{dy})"),
        });
        assert_eq!(v, 5.25);
    }

    #[test]
    fn radius_and_ops() {
        assert_eq!(Poisson2D.radius(), 1);
        assert_eq!(Poisson2D::op_count().dsp(), 14);
    }

    #[test]
    fn only_star_points_accessed() {
        let k = Poisson2D;
        // accessor panics on diagonal access — apply must not touch them
        let _ = k.apply(|dx, dy| {
            assert!(dx == 0 || dy == 0, "diagonal access ({dx},{dy})");
            1.0
        });
    }

    #[test]
    fn contraction_towards_neighbor_mean() {
        // |update| ≤ max(|neighbors|, |center|): coefficients sum to 1
        let k = Poisson2D;
        let v = k.apply(|dx, dy| if (dx, dy) == (0, 0) { 1.0 } else { -1.0 });
        assert_eq!(v, 0.0);
    }
}
