//! Vendored minimal `rand` stand-in for offline builds.
//!
//! Implements the small API surface this workspace uses: a deterministic
//! seedable RNG (`rngs::StdRng`, backed by SplitMix64) and
//! `Rng::gen_range` over half-open ranges of floats and integers. Not
//! cryptographic and not bit-compatible with the real `rand` crate — the
//! workspace only needs reproducible uniform workload data.

use core::ops::Range;

/// Seedable RNG constructor trait (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling over a range, dispatched per type.
pub trait SampleRange {
    type Output;
    fn sample(self, rng: &mut dyn RngCore) -> Self::Output;
}

/// Core entropy source: 64 uniform bits per call.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling trait (subset of `rand::Rng`).
pub trait Rng: RngCore + Sized {
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }
}

impl<T: RngCore + Sized> Rng for T {}

macro_rules! impl_float_range {
    ($t:ty, $bits:expr) => {
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                // Uniform in [0, 1) from the top mantissa bits.
                let unit = (rng.next_u64() >> (64 - $bits)) as $t / (1u64 << $bits) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    };
}

impl_float_range!(f32, 24);
impl_float_range!(f64, 53);

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is ≤ span/2^64 — irrelevant for test data.
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit RNG (SplitMix64). Stands in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f32 = a.gen_range(-2.0f32..3.0);
            let y: f32 = b.gen_range(-2.0f32..3.0);
            assert_eq!(x, y);
            assert!((-2.0..3.0).contains(&x));
        }
        let mut c = StdRng::seed_from_u64(8);
        let n: u64 = c.gen_range(10u64..20);
        assert!((10..20).contains(&n));
        let i: i32 = c.gen_range(-5i32..5);
        assert!((-5..5).contains(&i));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<f64> = (0..8).map(|_| a.gen_range(0.0f64..1.0)).collect();
        let ys: Vec<f64> = (0..8).map(|_| b.gen_range(0.0f64..1.0)).collect();
        assert_ne!(xs, ys);
    }
}
