//! Tile-size selection for spatial blocking (§IV-A).
//!
//! Eq. (11) gives the continuous memory-optimal square tile
//! `M = sqrt(FPGA_mem/(k·p·D))`, but the sizes the paper actually deploys
//! are set by **block quantization**:
//!
//! * Poisson (BRAM-buffered 2D rows): one BRAM36 per lane at power-of-two
//!   depth 1024 → `M = V · 1024 = 8192` (Table III).
//! * Jacobi (URAM-buffered 3D planes): one URAM288 per lane per plane →
//!   `M·N/V · 4 B = 36 KiB` → `M = N = 768` at `V = 64` (Table III).
//!
//! [`recommended_tile_2d`]/[`recommended_tile_3d`] implement exactly those
//! rules; the continuous optima are re-exported from [`crate::equations`]
//! for comparison.

use crate::equations;
use sf_fpga::FpgaDevice;
use sf_kernels::StencilSpec;

/// Largest power of two ≤ `n` (0 → 0).
fn floor_pow2(n: usize) -> usize {
    if n == 0 {
        0
    } else {
        1 << (usize::BITS - 1 - n.leading_zeros())
    }
}

/// Recommended 2D tile width `M` for a `(V, p)` design: BRAM-buffered lanes
/// at the largest power-of-two depth the BRAM budget allows.
pub fn recommended_tile_2d(dev: &FpgaDevice, spec: &StencilSpec, v: usize, p: usize) -> usize {
    assert_eq!(spec.dims, 2);
    let lane_buffers = p * spec.stages * spec.order * v;
    let budget = (dev.bram_blocks as f64 * dev.dsp_util_target) as usize;
    let blocks_per_lane = (budget / lane_buffers).max(1);
    let depth_cells = blocks_per_lane * dev.bram_block_bytes / spec.window_elem_bytes;
    let depth = floor_pow2(depth_cells);
    depth * v
}

/// Recommended square 3D tile `(M, N)` for a `(V, p)` design: one URAM per
/// lane per plane buffer (the routing-friendly single-block banking the
/// paper's designs use), `M` rounded down to a multiple of `V`.
pub fn recommended_tile_3d(
    dev: &FpgaDevice,
    spec: &StencilSpec,
    v: usize,
    p: usize,
) -> (usize, usize) {
    assert_eq!(spec.dims, 3);
    let lane_plane_cells = dev.uram_block_bytes / spec.window_elem_bytes;
    let plane_cells = lane_plane_cells * v;
    let m = sf_mesh::round_down((plane_cells as f64).sqrt() as usize, v).max(v);
    // verify the URAM budget actually covers it; shrink M if not
    let lane_buffers = p * spec.stages * spec.order * v;
    if lane_buffers > dev.uram_blocks {
        // fall back to the continuous optimum within whatever memory remains
        let cont = equations::m_opt(
            dev.internal_mem_bytes() as f64 * dev.mem_util_target,
            spec.window_elem_bytes as f64,
            p as f64,
            (spec.order * spec.stages) as f64,
        ) as usize;
        let m2 = sf_mesh::round_down(cont, v).max(v);
        return (m2, m2);
    }
    (m, m)
}

/// A complete spatial/temporal blocking recommendation for an application.
#[derive(Clone, Debug, PartialEq)]
pub struct BlockingPlan {
    /// Continuous memory-optimal square tile edge (eq. 11).
    pub m_continuous: f64,
    /// Quantized, deployable tile edge (`M`).
    pub m: usize,
    /// Second tile dimension (`N`, 3D only).
    pub n: Option<usize>,
    /// Throughput-optimal unroll for the quantized tile (eq. 12), before
    /// resource limits.
    pub p_throughput_opt: f64,
    /// The unroll actually deployable: `min(p_dsp, ⌊p_throughput_opt⌋)`,
    /// at least 1.
    pub p: usize,
    /// Minimum tile edge eq. (12) demands to support the given `p`
    /// (`M = 3·D·p` — the paper's "tile size dimension M = 96 from (12)
    /// given D is 8" for RTM at p = 4).
    pub m_required_for_p: usize,
    /// Predicted valid-cells-per-cycle throughput (eq. 13/14, `l → ∞`).
    pub throughput: f64,
}

/// Derive a blocking plan for an application at vectorization `v`.
pub fn blocking_plan(dev: &FpgaDevice, spec: &StencilSpec, v: usize) -> BlockingPlan {
    let d_eff = spec.order * spec.stages;
    let p_dsp = equations::p_dsp(dev.dsp_total, dev.dsp_util_target, v, spec.gdsp());
    let (m, n) = if spec.dims == 2 {
        (recommended_tile_2d(dev, spec, v, p_dsp.max(1)), None)
    } else {
        let (m, n) = recommended_tile_3d(dev, spec, v, p_dsp.max(1));
        (m, Some(n))
    };
    let m_continuous = equations::m_opt(
        dev.internal_mem_bytes() as f64 * dev.mem_util_target,
        spec.window_elem_bytes as f64,
        p_dsp.max(1) as f64,
        d_eff as f64,
    );
    let p_throughput_opt = equations::p_max_for_tile(m as f64, spec.order as f64);
    let p = p_dsp.min(p_throughput_opt.floor() as usize).max(1);
    let m_required_for_p = 3 * spec.order * p;
    let dsp = (p * v * spec.gdsp()) as f64;
    let throughput = if spec.dims == 2 {
        equations::t2d(m as f64, 1e12, p as f64, spec.order as f64, dsp, spec.gdsp() as f64)
    } else {
        equations::t3d(m as f64, 1e12, p as f64, spec.order as f64, dsp, spec.gdsp() as f64)
    };
    BlockingPlan { m_continuous, m, n, p_throughput_opt, p, m_required_for_p, throughput }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> FpgaDevice {
        FpgaDevice::u280()
    }

    #[test]
    fn poisson_tile_matches_table3() {
        // Table III: Poisson p=60, V=8 → M = 8192
        let m = recommended_tile_2d(&dev(), &StencilSpec::poisson(), 8, 60);
        assert_eq!(m, 8192);
    }

    #[test]
    fn jacobi_tile_matches_table3() {
        // Table III: Jacobi p=3, V=64 → M = N = 768
        let (m, n) = recommended_tile_3d(&dev(), &StencilSpec::jacobi(), 64, 3);
        assert_eq!((m, n), (768, 768));
    }

    #[test]
    fn smaller_p_gives_deeper_2d_tiles() {
        let m60 = recommended_tile_2d(&dev(), &StencilSpec::poisson(), 8, 60);
        let m20 = recommended_tile_2d(&dev(), &StencilSpec::poisson(), 8, 20);
        assert!(m20 >= m60, "fewer modules leave more BRAM per lane");
    }

    #[test]
    fn tile_is_multiple_of_v() {
        for v in [8usize, 16, 32, 64] {
            let (m, _) = recommended_tile_3d(&dev(), &StencilSpec::jacobi(), v, 3);
            assert_eq!(m % v, 0, "V={v}: M={m}");
        }
    }

    #[test]
    fn rtm_tiling_needs_m96_like_the_paper() {
        // §V-C: "A solution for the limited mesh size is of course spatial
        // blocking, but it requires p=4. This leads to a tile size dimension
        // M=96 from (12) given D is 8" — eq. (12) inverted: M = 3·D·p.
        assert_eq!(3 * 8 * 4, 96);
        let plan = blocking_plan(&dev(), &StencilSpec::rtm(), 1);
        // at p=3 the requirement is 72; the plan must report the identity
        assert_eq!(plan.m_required_for_p, 3 * 8 * plan.p);
        assert!(plan.p <= 3, "RTM unroll is DSP-capped at 3");
    }

    #[test]
    fn jacobi_blocking_plan_matches_table3() {
        let plan = blocking_plan(&dev(), &StencilSpec::jacobi(), 64);
        assert_eq!(plan.m, 768);
        assert_eq!(plan.n, Some(768));
        assert_eq!(plan.p, 3, "p_dsp = 3 at V = 64");
        assert!((plan.throughput - 189.0).abs() < 0.5, "T = {}", plan.throughput);
    }

    #[test]
    fn poisson_blocking_plan_matches_table3() {
        let plan = blocking_plan(&dev(), &StencilSpec::poisson(), 8);
        assert_eq!(plan.m, 8192);
        assert_eq!(plan.n, None);
        // p capped by DSPs (68), well below eq-12's M/3D = 1365
        assert_eq!(plan.p, 68);
        assert!(plan.p_throughput_opt > 1000.0);
        assert!(plan.throughput > 500.0);
    }

    #[test]
    fn floor_pow2_basics() {
        assert_eq!(floor_pow2(0), 0);
        assert_eq!(floor_pow2(1), 1);
        assert_eq!(floor_pow2(1023), 512);
        assert_eq!(floor_pow2(1024), 1024);
        assert_eq!(floor_pow2(1152), 1024);
    }
}
