//! Error norms and mesh comparison helpers.
//!
//! Used to validate the FPGA dataflow simulator (which must be **bit-exact**
//! against the golden sequential reference, since both call the same per-cell
//! kernel in the same order) and to bound Rayon-parallel executors (which are
//! also bit-exact for these kernels: each output cell is an independent pure
//! function of the input mesh).

use crate::element::Element;
use crate::mesh2d::Mesh2D;
use crate::mesh3d::Mesh3D;

/// Maximum absolute lane-wise difference between two equally-shaped slices.
pub fn max_abs_diff<T: Element>(a: &[T], b: &[T]) -> f32 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    let mut m = 0.0f32;
    for (ea, eb) in a.iter().zip(b) {
        for c in 0..T::LANES {
            m = m.max((ea.lane(c) - eb.lane(c)).abs());
        }
    }
    m
}

/// Root-mean-square lane-wise difference.
pub fn rms_diff<T: Element>(a: &[T], b: &[T]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    let mut acc = 0.0f64;
    let n = a.len() * T::LANES;
    for (ea, eb) in a.iter().zip(b) {
        for c in 0..T::LANES {
            let d = (ea.lane(c) - eb.lane(c)) as f64;
            acc += d * d;
        }
    }
    (acc / n as f64).sqrt()
}

/// `true` when two slices are bit-identical lane by lane (NaN-aware: NaN in
/// the same lane position on both sides counts as equal).
pub fn bit_equal<T: Element>(a: &[T], b: &[T]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    a.iter()
        .zip(b)
        .all(|(ea, eb)| (0..T::LANES).all(|c| ea.lane(c).to_bits() == eb.lane(c).to_bits()))
}

/// Max-norm over a whole mesh (largest absolute lane value).
pub fn max_norm_2d<T: Element>(m: &Mesh2D<T>) -> f32 {
    m.as_slice().iter().fold(0.0f32, |acc, e| acc.max(e.max_abs()))
}

/// Max-norm over a 3D mesh.
pub fn max_norm_3d<T: Element>(m: &Mesh3D<T>) -> f32 {
    m.as_slice().iter().fold(0.0f32, |acc, e| acc.max(e.max_abs()))
}

/// Index and magnitude of the first lane-wise mismatch, for debugging.
pub fn first_mismatch<T: Element>(a: &[T], b: &[T]) -> Option<(usize, usize, f32, f32)> {
    assert_eq!(a.len(), b.len(), "length mismatch");
    for (i, (ea, eb)) in a.iter().zip(b).enumerate() {
        for c in 0..T::LANES {
            if ea.lane(c).to_bits() != eb.lane(c).to_bits() {
                return Some((i, c, ea.lane(c), eb.lane(c)));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::VecN;

    #[test]
    fn max_abs_diff_basic() {
        let a = [1.0f32, 2.0, 3.0];
        let b = [1.5f32, 2.0, 2.0];
        assert_eq!(max_abs_diff(&a, &b), 1.0);
        assert_eq!(max_abs_diff(&a, &a), 0.0);
    }

    #[test]
    fn rms_diff_basic() {
        let a = [0.0f32, 0.0];
        let b = [3.0f32, 4.0];
        // sqrt((9+16)/2) = sqrt(12.5)
        assert!((rms_diff(&a, &b) - 12.5f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn bit_equal_distinguishes_signed_zero() {
        let a = [0.0f32];
        let b = [-0.0f32];
        assert!(!bit_equal(&a, &b));
        assert!(bit_equal(&a, &a));
    }

    #[test]
    fn bit_equal_nan_aware() {
        let a = [f32::NAN];
        assert!(bit_equal(&a, &a));
    }

    #[test]
    fn first_mismatch_reports_lane() {
        let a = [VecN::new([1.0, 2.0]), VecN::new([3.0, 4.0])];
        let mut b = a;
        b[1].0[1] = 9.0;
        let (i, c, va, vb) = first_mismatch(&a, &b).unwrap();
        assert_eq!((i, c), (1, 1));
        assert_eq!((va, vb), (4.0, 9.0));
        assert!(first_mismatch(&a, &a).is_none());
    }

    #[test]
    fn norms_over_meshes() {
        let m = Mesh2D::<f32>::from_fn(3, 3, |x, y| -((x + y) as f32));
        assert_eq!(max_norm_2d(&m), 4.0);
        let m3 = Mesh3D::<f32>::from_fn(2, 2, 2, |x, y, z| (x + y + z) as f32);
        assert_eq!(max_norm_3d(&m3), 3.0);
    }
}
