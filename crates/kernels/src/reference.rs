//! Golden sequential reference executors.
//!
//! These are the trusted implementations every accelerated path (the FPGA
//! dataflow simulator, the Rayon executors) is validated against. They are
//! deliberately simple: double-buffered, interior-update / boundary
//! pass-through, iterating in plain row-major order.

use crate::op2d::StencilOp2D;
use crate::op3d::StencilOp3D;
use crate::rtm::{self, RtmParams, RtmStage, RtmState};
use sf_mesh::{Batch2D, Batch3D, Element, Mesh2D, Mesh3D};

/// Apply one 2D stage: interior cells get `k.apply`, boundary cells get
/// `k.on_boundary`.
pub fn step_2d<T: Element, K: StencilOp2D<T>>(k: &K, input: &Mesh2D<T>) -> Mesh2D<T> {
    let r = k.radius();
    let ri = r as i32;
    Mesh2D::from_fn(input.nx(), input.ny(), |x, y| {
        if input.is_interior(x, y, r) {
            k.apply(|dx, dy| {
                debug_assert!(dx.abs() <= ri && dy.abs() <= ri);
                input.get((x as i32 + dx) as usize, (y as i32 + dy) as usize)
            })
        } else {
            k.on_boundary(input.get(x, y))
        }
    })
}

/// Run `iters` iterations of a single 2D stencil loop.
pub fn run_2d<T: Element, K: StencilOp2D<T>>(k: &K, mesh: &Mesh2D<T>, iters: usize) -> Mesh2D<T> {
    let mut cur = mesh.clone();
    for _ in 0..iters {
        cur = step_2d(k, &cur);
    }
    cur
}

/// Apply one 3D stage.
pub fn step_3d<T: Element, K: StencilOp3D<T>>(k: &K, input: &Mesh3D<T>) -> Mesh3D<T> {
    let r = k.radius();
    let ri = r as i32;
    Mesh3D::from_fn(input.nx(), input.ny(), input.nz(), |x, y, z| {
        if input.is_interior(x, y, z, r) {
            k.apply(|dx, dy, dz| {
                debug_assert!(dx.abs() <= ri && dy.abs() <= ri && dz.abs() <= ri);
                input.get(
                    (x as i32 + dx) as usize,
                    (y as i32 + dy) as usize,
                    (z as i32 + dz) as usize,
                )
            })
        } else {
            k.on_boundary(input.get(x, y, z))
        }
    })
}

/// Run `iters` iterations of a single 3D stencil loop.
pub fn run_3d<T: Element, K: StencilOp3D<T>>(k: &K, mesh: &Mesh3D<T>, iters: usize) -> Mesh3D<T> {
    let mut cur = mesh.clone();
    for _ in 0..iters {
        cur = step_3d(k, &cur);
    }
    cur
}

/// Run `iters` iterations of a *multi-stage* 2D loop chain (all stages
/// applied per iteration, in order) — the pre-fusion view of a 2D multi-loop
/// application such as [`crate::wave2d`].
pub fn run_stages_2d<T: Element, K: StencilOp2D<T>>(
    stages: &[K],
    mesh: &Mesh2D<T>,
    iters: usize,
) -> Mesh2D<T> {
    let mut cur = mesh.clone();
    for _ in 0..iters {
        for k in stages {
            cur = step_2d(k, &cur);
        }
    }
    cur
}

/// Run `iters` iterations of a *multi-stage* 3D loop chain (all stages applied
/// per iteration, in order) — the pre-fusion view of RTM's Algorithm 1.
pub fn run_stages_3d<T: Element, K: StencilOp3D<T>>(
    stages: &[K],
    mesh: &Mesh3D<T>,
    iters: usize,
) -> Mesh3D<T> {
    let mut cur = mesh.clone();
    for _ in 0..iters {
        for k in stages {
            cur = step_3d(k, &cur);
        }
    }
    cur
}

/// Run a batch of independent 2D problems (the semantic ground truth the
/// batched FPGA execution must reproduce).
pub fn run_batch_2d<T: Element, K: StencilOp2D<T>>(
    k: &K,
    batch: &Batch2D<T>,
    iters: usize,
) -> Batch2D<T> {
    let meshes: Vec<_> = (0..batch.batch()).map(|i| run_2d(k, &batch.mesh(i), iters)).collect();
    Batch2D::from_meshes(&meshes)
}

/// Run a batch of independent 3D problems.
pub fn run_batch_3d<T: Element, K: StencilOp3D<T>>(
    k: &K,
    batch: &Batch3D<T>,
    iters: usize,
) -> Batch3D<T> {
    let meshes: Vec<_> = (0..batch.batch()).map(|i| run_3d(k, &batch.mesh(i), iters)).collect();
    Batch3D::from_meshes(&meshes)
}

/// Full RTM forward pass: pack, run `iters` RK4 steps (4 fused stages each),
/// unpack the state.
pub fn rtm_run(
    y: &Mesh3D<RtmState>,
    rho: &Mesh3D<f32>,
    mu: &Mesh3D<f32>,
    params: RtmParams,
    iters: usize,
) -> Mesh3D<RtmState> {
    let stages = RtmStage::pipeline(params);
    let packed0 = rtm::pack(y, rho, mu);
    let packed = run_stages_3d(&stages, &packed0, iters);
    rtm::unpack(&packed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jacobi3d::Jacobi3D;
    use crate::poisson::Poisson2D;
    use sf_mesh::norms;

    #[test]
    fn poisson_boundary_held_fixed() {
        let m = Mesh2D::<f32>::random(8, 8, 1, 0.0, 1.0);
        let out = run_2d(&Poisson2D, &m, 5);
        for x in 0..8 {
            assert_eq!(out.get(x, 0), m.get(x, 0));
            assert_eq!(out.get(x, 7), m.get(x, 7));
            assert_eq!(out.get(0, x), m.get(0, x));
            assert_eq!(out.get(7, x), m.get(7, x));
        }
    }

    #[test]
    fn poisson_zero_iters_is_identity() {
        let m = Mesh2D::<f32>::random(10, 6, 2, -1.0, 1.0);
        assert_eq!(run_2d(&Poisson2D, &m, 0), m);
    }

    #[test]
    fn poisson_smooths_towards_boundary_values() {
        // all-zero boundary, hot interior → interior decays
        let mut m = Mesh2D::<f32>::zeros(16, 16);
        m.set(8, 8, 100.0);
        let out = run_2d(&Poisson2D, &m, 500);
        assert!(out.get(8, 8).abs() < 1.0, "interior must decay, got {}", out.get(8, 8));
        assert!(out.all_finite());
    }

    #[test]
    fn poisson_one_step_hand_checked() {
        let m = Mesh2D::<f32>::from_fn(3, 3, |x, y| (y * 3 + x) as f32);
        let out = step_2d(&Poisson2D, &m);
        // center: neighbors 3,5,1,7 sum=16 → 2 + 0.5*4 = 4
        assert_eq!(out.get(1, 1), 4.0);
        assert_eq!(out.get(0, 0), 0.0); // boundary held
    }

    #[test]
    fn jacobi_converges_for_smoothing_coefficients() {
        let m = Mesh3D::<f32>::random(12, 12, 12, 3, -1.0, 1.0);
        let out = run_3d(&Jacobi3D::smoothing(), &m, 200);
        assert!(out.all_finite());
        // smoothing contracts the interior towards the (random) boundary
        // envelope; max norm must not grow
        assert!(norms::max_norm_3d(&out) <= norms::max_norm_3d(&m) + 1e-6);
    }

    #[test]
    fn batch_equals_independent_runs() {
        let meshes: Vec<_> = (0..3).map(|i| Mesh2D::<f32>::random(8, 6, i, 0.0, 1.0)).collect();
        let batch = Batch2D::from_meshes(&meshes);
        let out = run_batch_2d(&Poisson2D, &batch, 7);
        for (i, m) in meshes.iter().enumerate() {
            let solo = run_2d(&Poisson2D, m, 7);
            assert!(
                norms::bit_equal(out.mesh(i).as_slice(), solo.as_slice()),
                "batched mesh {i} diverged from independent solve"
            );
        }
    }

    #[test]
    fn rtm_stays_finite_and_damps() {
        let (y, rho, mu) = rtm::demo_workload(14, 14, 14);
        let out = rtm_run(&y, &rho, &mu, RtmParams::default(), 50);
        assert!(out.all_finite());
    }

    #[test]
    fn rtm_zero_field_stays_zero() {
        let y = Mesh3D::<RtmState>::zeros(12, 12, 12);
        let rho = Mesh3D::<f32>::from_fn(12, 12, 12, |_, _, _| 1.0);
        let mu = Mesh3D::<f32>::from_fn(12, 12, 12, |_, _, _| 0.02);
        let out = rtm_run(&y, &rho, &mu, RtmParams::default(), 10);
        assert!(norms::max_norm_3d(&out) == 0.0);
    }

    #[test]
    fn rtm_wave_propagates_from_pulse() {
        let (y, rho, mu) = rtm::demo_workload(16, 16, 16);
        let out = rtm_run(&y, &rho, &mu, RtmParams { dt: 0.05, sigma: 0.01, sigma2: 0.01 }, 30);
        // a point 3 cells from the center starts ~0 in q; the wave coupling
        // must have moved something there
        let probe = out.get(11, 8, 8);
        assert!(probe.0.iter().any(|&v| v != y.get(11, 8, 8).0[0] && v.abs() > 0.0));
        assert!(out.all_finite());
    }
}
