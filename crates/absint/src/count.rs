//! The op-counting domain: executing a kernel on [`CountingValue`] tallies
//! the adds/subs/muls/divs the datapath would execute.
//!
//! The counters are **thread-local**, not value-carried: a value-carried
//! count would double-tally shared subexpressions (RTM's `K = dt·f` feeds
//! both the `T'` and `Yacc'` updates — the DAG reuses the node, the
//! pipeline computes it once), whereas a global tally increments exactly
//! once per executed operator, which is precisely what `G_dsp` prices.

use crate::tally::OpTally;
use core::ops::{Add, Div, Mul, Sub};
use sf_kernels::AbstractValue;
use std::cell::Cell;

thread_local! {
    static ADDS: Cell<u64> = const { Cell::new(0) };
    static MULS: Cell<u64> = const { Cell::new(0) };
    static DIVS: Cell<u64> = const { Cell::new(0) };
}

/// A unit value whose arithmetic bumps the thread-local op tally.
/// Kernel constants enter via [`AbstractValue::constant`] for free — the
/// counted ops are exactly those that touch streamed data or runtime
/// parameters, matching the HLS constant-folding convention.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CountingValue;

impl Add for CountingValue {
    type Output = CountingValue;
    fn add(self, _: CountingValue) -> CountingValue {
        ADDS.with(|c| c.set(c.get() + 1));
        CountingValue
    }
}

impl Sub for CountingValue {
    type Output = CountingValue;
    fn sub(self, _: CountingValue) -> CountingValue {
        // fsub prices like fadd on the DSP datapath
        ADDS.with(|c| c.set(c.get() + 1));
        CountingValue
    }
}

impl Mul for CountingValue {
    type Output = CountingValue;
    fn mul(self, _: CountingValue) -> CountingValue {
        MULS.with(|c| c.set(c.get() + 1));
        CountingValue
    }
}

impl Div for CountingValue {
    type Output = CountingValue;
    fn div(self, _: CountingValue) -> CountingValue {
        DIVS.with(|c| c.set(c.get() + 1));
        CountingValue
    }
}

impl AbstractValue for CountingValue {
    fn constant(_: f32) -> Self {
        CountingValue
    }
}

/// Run `f` with zeroed counters and return its result plus the ops it
/// executed on this thread.
pub fn count_ops<R>(f: impl FnOnce() -> R) -> (R, OpTally) {
    ADDS.with(|c| c.set(0));
    MULS.with(|c| c.set(0));
    DIVS.with(|c| c.set(0));
    let r = f();
    let tally = OpTally {
        adds: ADDS.with(Cell::get),
        muls: MULS.with(Cell::get),
        divs: DIVS.with(Cell::get),
    };
    (r, tally)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operators_tally_and_constants_are_free() {
        let ((), t) = count_ops(|| {
            let a = CountingValue::constant(1.0);
            let b = CountingValue::constant(2.0);
            let c = a + b; // 1 add
            let d = c - a; // 1 add (sub prices as add)
            let e = d * b; // 1 mul
            let _ = e / a; // 1 div
        });
        assert_eq!(t, OpTally { adds: 2, muls: 1, divs: 1 });
    }

    #[test]
    fn count_resets_between_runs() {
        let (_, t1) = count_ops(|| CountingValue + CountingValue);
        let (_, t2) = count_ops(|| CountingValue * CountingValue);
        assert_eq!(t1.adds, 1);
        assert_eq!((t2.adds, t2.muls), (0, 1));
    }

    #[test]
    fn shared_subexpressions_count_once() {
        // k is computed once and used twice — the tally must see one mul
        let (_, t) = count_ops(|| {
            let k = CountingValue * CountingValue;
            let _ = (CountingValue + k, CountingValue + k);
        });
        assert_eq!((t.muls, t.adds), (1, 2));
    }
}
