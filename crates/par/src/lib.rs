//! Deterministic parallel execution layer for the stencil-fpga workspace.
//!
//! Everything in the simulator that scales with cores — batched-mesh
//! execution (paper eq. 15), the DSE sweep over (V, p, M, N) candidates,
//! and the fault-injection campaign's kind×rate×seed grid — is
//! embarrassingly parallel: independent work items whose results are
//! combined in a fixed order. This crate provides the one primitive those
//! paths share, [`par_map`], plus the policy glue around it:
//!
//! * [`par_map`] — an ordered parallel map over owned work items. Results
//!   come back in **input order** regardless of worker count or OS
//!   scheduling, which is what makes "parallel runs are byte-identical to
//!   serial runs" a structural guarantee rather than a test-lottery win.
//! * [`jobs`] — worker-count resolution with one precedence rule shared by
//!   every CLI entry point: explicit `--jobs` flag, then the `SF_JOBS`
//!   environment variable, then [`std::thread::available_parallelism`].
//! * [`Memo`] — a thread-safe, deterministic memoization cache used to
//!   share analytic-model results (eq. 2–15 predictions, design-rule check
//!   reports) between the DSE sweep, `Workflow::preflight` and repeated
//!   `sfstencil` invocations in one process.
//!
//! The vendored `rayon` stand-in in `vendor/` is a *sequential* shim kept
//! for API compatibility; this crate is where real threads live. It uses
//! only [`std::thread::scope`] — no unsafe code, no external dependencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod jobs;
mod memo;
mod pool;

pub use jobs::{available_jobs, resolve_jobs};
pub use memo::{Memo, MemoStats};
pub use pool::par_map;
