#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # sf-fpga — the U280 substrate: a behavioral + cycle-approximate FPGA
//! dataflow simulator
//!
//! The paper synthesizes stencil accelerators with Vivado HLS and measures
//! them on a Xilinx Alveo U280. This crate replaces that hardware path with
//! a simulator that reproduces both *what* the accelerator computes and *how
//! long* it takes, using the same mechanisms the paper's design relies on:
//!
//! * [`device`] — the U280 descriptor (Table I) plus the calibrated
//!   micro-architectural constants (AXI latency/gap, host enqueue latency).
//! * [`resources`] — the resource allocator: DSP accounting via `G_dsp`, and
//!   window-buffer memory **quantized to BRAM36/URAM288 blocks per lane**,
//!   which is what actually limits tile sizes on the real device.
//! * [`clock`] — the routing-congestion frequency model: achievable clock
//!   derated by DSP/memory utilization and unroll depth, calibrated to the
//!   paper's Table II (Poisson p=60 → 250 MHz, Jacobi p=29 → 246 MHz,
//!   RTM p=3 → 261 MHz).
//! * [`axi`] — per-row/burst transfer timing: request-issue gaps, strided
//!   run efficiency (`run/(run+gap)`), channel counts.
//! * [`design`] — [`design::StencilDesign`]: a synthesized configuration
//!   (`V`, `p`, execution mode, memory binding, achieved clock, resources),
//!   produced by [`design::synthesize`].
//! * [`window`] — genuine ring-buffer window buffers and streaming stage
//!   processors: the behavioral heart of the simulator. Cells stream in
//!   row-major order through chained stages exactly as the HLS dataflow
//!   pipeline would, so results are bit-exact vs the golden reference.
//! * [`cycles`] — the closed-form cycle model shared by the executor and the
//!   estimator (and validated against the paper's equations in `sf-model`).
//! * [`exec2d`]/[`exec3d`] — baseline / batched / tiled executors producing a
//!   [`report::SimReport`]; `simulate_*` runs numerics + timing,
//!   `estimate_*` produces timing only (for paper-scale workloads).
//! * [`power`] — the xbutil-equivalent power/energy model.
//! * [`profile`] — schedule-level telemetry: feeds an `sf-telemetry`
//!   [`Recorder`] with per-pass/per-tile spans, AXI channel utilisation,
//!   FIFO backpressure and stall attribution; `simulate_*_traced` adds
//!   behavioral window-buffer events on top.

pub mod axi;
pub mod clock;
pub mod cycles;
pub mod design;
pub mod device;
pub mod error;
pub mod exec2d;
pub mod exec3d;
pub mod exec_batch;
pub mod fast;
pub mod fifo;
pub mod power;
pub mod profile;
pub mod recovery;
pub mod report;
pub mod resilient;
pub mod resources;
pub mod slr;
pub mod trace;
pub mod window;

pub use design::{ExecMode, MemKind, StencilDesign, SynthesisError};
pub use device::{FpgaDevice, MemorySpec};
pub use error::ExecError;
pub use exec_batch::{simulate_batch_2d_parallel, simulate_batch_3d_parallel};
pub use fast::{
    simulate_2d_exec, simulate_2d_fast, simulate_3d_exec, simulate_3d_fast, simulate_batch_2d_fast,
    simulate_batch_2d_parallel_exec, simulate_batch_3d_fast, simulate_batch_3d_parallel_exec,
    ExecEngine, FastEngine,
};
pub use recovery::{
    simulate_2d_recoverable, simulate_3d_recoverable, simulate_batch_2d_recoverable,
    simulate_batch_3d_recoverable,
};
pub use report::SimReport;
pub use resilient::{plan_with_faults, simulate_2d_resilient, simulate_3d_resilient, FaultyPlan};
pub use resources::ResourceUsage;
pub use sf_faults::{
    AxiVerdict, FaultInjector, FaultKind, FaultPlan, RetryPolicy, Watchdog, WatchdogTrip,
};
pub use sf_recover::{RecoveryConfig, RecoveryPolicy, RecoveryStats};
pub use sf_telemetry::{Recorder, StallClass};
