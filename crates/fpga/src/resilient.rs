//! Fault-aware execution: the plain executors with every panic replaced by a
//! typed [`ExecError`] and every datapath guarded by the `sf-faults` hooks.
//!
//! The resilient chain runners mirror [`crate::window::run_chain_2d_traced`] /
//! `run_chain_3d_traced`, consulting a [`FaultInjector`] at each opportunity
//! point:
//!
//! * **window-buffer cells** — a [`FaultKind::BitFlip`](sf_faults::FaultKind)
//!   flips one bit of one lane before the cell enters the first window
//!   buffer; the run completes but the output checksum vs the golden
//!   reference catches it.
//! * **stream elements** — `FifoDrop` starves the downstream stages, which
//!   the [`Watchdog`] reports as a deadlock with a structured diagnosis;
//!   `FifoDup` overflows the input FIFO (the surplus element is discarded at
//!   the full queue) and shifts the stream; `FifoCorrupt` mangles a payload.
//! * **AXI bursts** — `AxiDelay`/`AxiFail` go through the
//!   [`RetryPolicy`] backoff model: recovered bursts charge their extra
//!   cycles to the [`CyclePlan`] (and telemetry), an exhausted retry budget
//!   becomes [`ExecError::AxiExhausted`].
//!
//! With a [`FaultInjector::disabled`] injector the resilient executors are
//! bit-exact with the plain ones.

use crate::cycles::{self, CyclePlan};
use crate::design::{ExecMode, StencilDesign, Workload};
use crate::device::FpgaDevice;
use crate::error::ExecError;
use crate::power;
use crate::report::SimReport;
use crate::window::{Engine2D, Engine3D, ScalarEngine, Stage2D, Stage3D};
use sf_faults::{AxiVerdict, FaultInjector, RetryPolicy, StreamFault, Watchdog};
use sf_kernels::{StencilOp2D, StencilOp3D};
use sf_mesh::{Batch2D, Batch3D, Element};
use sf_telemetry::Recorder;

/// Flip bit `bit` of lane `lane` of `cell` in a streamed unit.
fn apply_bitflip<T: Element>(unit: &mut [T], cell: usize, lane: usize, bit: u32) {
    let mut v = unit[cell];
    let bits = v.lane(lane).to_bits() ^ (1u32 << (bit % 32));
    v.set_lane(lane, f32::from_bits(bits));
    unit[cell] = v;
}

/// Deterministic payload corruption for `FifoCorrupt`: mangle the mantissa
/// of the middle cell's first lane.
fn corrupt_unit<T: Element>(unit: &mut [T]) {
    let mid = unit.len() / 2;
    apply_bitflip(unit, mid, 0, 22);
}

/// Fault-aware variant of [`crate::window::run_chain_2d`]: streams `rows`
/// through the chain, consulting `inj` per stream unit and reporting forward
/// progress to `dog`. Dropped units starve the pipeline and surface as
/// [`ExecError::Deadlock`]; duplicated/corrupted/bit-flipped units complete
/// with wrong data (caught downstream by checksum).
#[allow(clippy::too_many_arguments)]
pub fn run_chain_2d_resilient<T: Element, K: StencilOp2D<T> + Clone>(
    chain: &[K],
    nx: usize,
    stream_rows: usize,
    mesh_ny: usize,
    rows: impl Iterator<Item = Vec<T>>,
    inj: &mut FaultInjector,
    dog: &mut Watchdog,
    cycles_per_row: u64,
) -> Result<Vec<Vec<T>>, ExecError> {
    run_chain_2d_resilient_engine(
        &ScalarEngine,
        chain,
        nx,
        stream_rows,
        mesh_ny,
        rows,
        inj,
        dog,
        cycles_per_row,
    )
}

/// [`run_chain_2d_resilient`] for any [`Engine2D`]: injection points,
/// watchdog accounting and drain order are independent of the stage
/// implementation, so scalar and fast runs trip the same faults at the same
/// stream offsets.
#[allow(clippy::too_many_arguments)]
pub fn run_chain_2d_resilient_engine<T: Element, K, E: Engine2D<T, K>>(
    engine: &E,
    chain: &[K],
    nx: usize,
    stream_rows: usize,
    mesh_ny: usize,
    rows: impl Iterator<Item = Vec<T>>,
    inj: &mut FaultInjector,
    dog: &mut Watchdog,
    cycles_per_row: u64,
) -> Result<Vec<Vec<T>>, ExecError> {
    let mut procs: Vec<E::Stage> =
        chain.iter().map(|k| engine.stage(k, nx, stream_rows, mesh_ny)).collect();
    let mut out = Vec::with_capacity(stream_rows);

    fn feed<T: Element, S: Stage2D<T>>(
        procs: &mut [S],
        from: usize,
        row: Vec<T>,
        out: &mut Vec<Vec<T>>,
    ) {
        let mut current = row;
        for p in procs[from..].iter_mut() {
            match p.push_row(current) {
                Some(r) => current = r,
                None => return,
            }
        }
        out.push(current);
    }

    let mut fed = 0usize;
    let mut j = 0u64;
    for mut row in rows {
        let cycle = j * cycles_per_row;
        if let Some(flip) = inj.window_bitflip(0, j as usize, nx, T::LANES) {
            apply_bitflip(&mut row, flip.cell, flip.lane, flip.bit);
        }
        let fault = inj.stream_fault(j as usize);
        j += 1;
        let copies: usize = match fault {
            StreamFault::Drop => 0,
            StreamFault::Dup => 2,
            StreamFault::Corrupt => {
                corrupt_unit(&mut row);
                1
            }
            StreamFault::None => 1,
        };
        for c in 0..copies {
            if fed == stream_rows {
                // Input FIFO already holds the whole stream: the surplus
                // element is discarded at the full queue.
                break;
            }
            let r = if c + 1 < copies { row.clone() } else { std::mem::take(&mut row) };
            let before = out.len();
            feed(&mut procs, 0, r, &mut out);
            fed += 1;
            if out.len() > before {
                dog.observe(cycle, (out.len() - before) as u64);
            }
        }
        dog.check(cycle, "streaming input rows")?;
    }
    let end_cycle = j * cycles_per_row;
    if fed < stream_rows {
        // The stages wait forever for the missing rows — a starvation
        // deadlock on real hardware; report it via the watchdog.
        let detail = format!("input stream starved: {fed}/{stream_rows} rows reached the pipeline");
        return Err(dog
            .finish(end_cycle, &detail)
            .expect_err("starved stream cannot have emitted the full output")
            .into());
    }
    for i in 0..procs.len() {
        let trailing = procs[i].finish();
        for row in trailing {
            let before = out.len();
            feed(&mut procs, i + 1, row, &mut out);
            if out.len() > before {
                dog.observe(end_cycle, (out.len() - before) as u64);
            }
        }
    }
    dog.finish(end_cycle, "chain drained")?;
    Ok(out)
}

/// Fault-aware variant of [`crate::window::run_chain_3d`] — the streamed
/// unit is a plane of `nx × ny` cells.
#[allow(clippy::too_many_arguments)]
pub fn run_chain_3d_resilient<T: Element, K: StencilOp3D<T> + Clone>(
    chain: &[K],
    nx: usize,
    ny: usize,
    stream_planes: usize,
    mesh_nz: usize,
    planes: impl Iterator<Item = Vec<T>>,
    inj: &mut FaultInjector,
    dog: &mut Watchdog,
    cycles_per_plane: u64,
) -> Result<Vec<Vec<T>>, ExecError> {
    run_chain_3d_resilient_engine(
        &ScalarEngine,
        chain,
        nx,
        ny,
        stream_planes,
        mesh_nz,
        planes,
        inj,
        dog,
        cycles_per_plane,
    )
}

/// [`run_chain_3d_resilient`] for any [`Engine3D`] (see
/// [`run_chain_2d_resilient_engine`]).
#[allow(clippy::too_many_arguments)]
pub fn run_chain_3d_resilient_engine<T: Element, K, E: Engine3D<T, K>>(
    engine: &E,
    chain: &[K],
    nx: usize,
    ny: usize,
    stream_planes: usize,
    mesh_nz: usize,
    planes: impl Iterator<Item = Vec<T>>,
    inj: &mut FaultInjector,
    dog: &mut Watchdog,
    cycles_per_plane: u64,
) -> Result<Vec<Vec<T>>, ExecError> {
    let mut procs: Vec<E::Stage> =
        chain.iter().map(|k| engine.stage(k, nx, ny, stream_planes, mesh_nz)).collect();
    let mut out = Vec::with_capacity(stream_planes);

    fn feed<T: Element, S: Stage3D<T>>(
        procs: &mut [S],
        from: usize,
        plane: Vec<T>,
        out: &mut Vec<Vec<T>>,
    ) {
        let mut current = plane;
        for p in procs[from..].iter_mut() {
            match p.push_plane(current) {
                Some(r) => current = r,
                None => return,
            }
        }
        out.push(current);
    }

    let mut fed = 0usize;
    let mut j = 0u64;
    for mut plane in planes {
        let cycle = j * cycles_per_plane;
        if let Some(flip) = inj.window_bitflip(0, j as usize, nx * ny, T::LANES) {
            apply_bitflip(&mut plane, flip.cell, flip.lane, flip.bit);
        }
        let fault = inj.stream_fault(j as usize);
        j += 1;
        let copies: usize = match fault {
            StreamFault::Drop => 0,
            StreamFault::Dup => 2,
            StreamFault::Corrupt => {
                corrupt_unit(&mut plane);
                1
            }
            StreamFault::None => 1,
        };
        for c in 0..copies {
            if fed == stream_planes {
                break;
            }
            let r = if c + 1 < copies { plane.clone() } else { std::mem::take(&mut plane) };
            let before = out.len();
            feed(&mut procs, 0, r, &mut out);
            fed += 1;
            if out.len() > before {
                dog.observe(cycle, (out.len() - before) as u64);
            }
        }
        dog.check(cycle, "streaming input planes")?;
    }
    let end_cycle = j * cycles_per_plane;
    if fed < stream_planes {
        let detail =
            format!("input stream starved: {fed}/{stream_planes} planes reached the pipeline");
        return Err(dog
            .finish(end_cycle, &detail)
            .expect_err("starved stream cannot have emitted the full output")
            .into());
    }
    for i in 0..procs.len() {
        let trailing = procs[i].finish();
        for plane in trailing {
            let before = out.len();
            feed(&mut procs, i + 1, plane, &mut out);
            if out.len() > before {
                dog.observe(end_cycle, (out.len() - before) as u64);
            }
        }
    }
    dog.finish(end_cycle, "chain drained")?;
    Ok(out)
}

/// A [`CyclePlan`] with the AXI fault/retry model applied.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultyPlan {
    /// The plan including retry backoff in `total_cycles`/`runtime_s`.
    pub plan: CyclePlan,
    /// Backoff cycles added by recovered bursts.
    pub extra_axi_cycles: u64,
    /// Bursts that failed and recovered via retry.
    pub bursts_recovered: u64,
    /// Total bursts the solve issues.
    pub bursts_total: u64,
}

/// Bursts actually walked through the injector; beyond this the sampled
/// backoff is scaled to the full burst population (keeps paper-scale
/// workloads plannable).
const MAX_BURST_WALK: u64 = 65_536;

/// [`cycles::plan`] with AXI faults: every burst (up to `MAX_BURST_WALK`,
/// then scaled) is pushed through the injector's retry model. Recovered
/// bursts add their backoff to the plan; an exhausted burst aborts with
/// [`ExecError::AxiExhausted`].
pub fn plan_with_faults(
    dev: &FpgaDevice,
    design: &StencilDesign,
    wl: &Workload,
    niter: u64,
    inj: &mut FaultInjector,
    policy: &RetryPolicy,
) -> Result<FaultyPlan, ExecError> {
    let mut plan = cycles::plan(dev, design, wl, niter);
    let bytes = plan.ext_read_bytes + plan.ext_write_bytes;
    let bursts_total = (bytes / dev.axi_burst_bytes as u64).max(1);
    let walk = bursts_total.min(MAX_BURST_WALK);
    let mut extra = 0u64;
    let mut recovered = 0u64;
    for b in 0..walk {
        match inj.axi_burst(b, policy) {
            AxiVerdict::Ok => {}
            AxiVerdict::Recovered { extra_cycles, .. } => {
                extra += extra_cycles;
                recovered += 1;
            }
            AxiVerdict::Exhausted { attempts } => {
                return Err(ExecError::AxiExhausted { burst: b, attempts })
            }
        }
    }
    if bursts_total > walk {
        extra = (extra as f64 * bursts_total as f64 / walk as f64) as u64;
    }
    plan.total_cycles += extra;
    plan.runtime_s = plan.total_cycles as f64 / design.freq_hz
        + plan.host_calls as f64 * dev.host_call_latency_s;
    Ok(FaultyPlan { plan, extra_axi_cycles: extra, bursts_recovered: recovered, bursts_total })
}

pub(crate) fn check_mode(design: &StencilDesign, b: usize) -> Result<(), ExecError> {
    match design.mode {
        ExecMode::Baseline if b != 1 => Err(ExecError::ShapeMismatch {
            detail: format!("baseline design runs one mesh, got batch {b}"),
        }),
        ExecMode::Batched { b: db } if b != db => {
            Err(ExecError::ShapeMismatch { detail: format!("design batch {db} fed batch {b}") })
        }
        ExecMode::Tiled1D { .. } | ExecMode::Tiled2D { .. } => Err(ExecError::Unsupported {
            detail: "fault injection targets whole-mesh streaming designs".to_string(),
        }),
        _ => Ok(()),
    }
}

/// Watchdog budget for one pass: a full pass worth of cycles with no
/// forward progress means the pipeline is wedged.
pub(crate) fn pass_budget(design: &StencilDesign, stream_units: u64, unit_cycles: u64) -> u64 {
    unit_cycles * (stream_units + cycles::fill_units(design)) + design.pipeline_latency_cycles + 1
}

/// Fault-aware [`crate::exec2d::simulate_2d`]: never panics on datapath
/// faults or shape mismatches, charges AXI retry backoff into the report,
/// and feeds `fault.*` counters into `rec`.
#[allow(clippy::too_many_arguments)]
pub fn simulate_2d_resilient<T: Element, K: StencilOp2D<T> + Clone>(
    dev: &FpgaDevice,
    design: &StencilDesign,
    stages_per_iter: &[K],
    input: &Batch2D<T>,
    niter: usize,
    inj: &mut FaultInjector,
    policy: &RetryPolicy,
    rec: &mut Recorder,
) -> Result<(Batch2D<T>, SimReport), ExecError> {
    simulate_2d_resilient_core(
        &ScalarEngine,
        dev,
        design,
        stages_per_iter,
        input,
        niter,
        inj,
        policy,
        rec,
    )
}

/// Engine-generic body of [`simulate_2d_resilient`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn simulate_2d_resilient_core<T: Element, K: Clone, E: Engine2D<T, K>>(
    engine: &E,
    dev: &FpgaDevice,
    design: &StencilDesign,
    stages_per_iter: &[K],
    input: &Batch2D<T>,
    niter: usize,
    inj: &mut FaultInjector,
    policy: &RetryPolicy,
    rec: &mut Recorder,
) -> Result<(Batch2D<T>, SimReport), ExecError> {
    if niter == 0 {
        return Err(ExecError::ShapeMismatch { detail: "niter must be positive".to_string() });
    }
    if stages_per_iter.len() != design.spec.stages {
        return Err(ExecError::ShapeMismatch {
            detail: format!(
                "design expects {} stages per iteration, got {}",
                design.spec.stages,
                stages_per_iter.len()
            ),
        });
    }
    let (nx, ny, b) = (input.nx(), input.ny(), input.batch());
    check_mode(design, b)?;
    let wl = Workload::D2 { nx, ny, batch: b };
    let fp = plan_with_faults(dev, design, &wl, niter as u64, inj, policy)?;
    let rc = cycles::design_row_cycles(dev, design, nx, nx);
    let stream_rows = b * ny;
    let budget = pass_budget(design, stream_rows as u64, rc);

    let mut cur = input.clone();
    let mut remaining = niter;
    while remaining > 0 {
        let p_eff = design.p.min(remaining);
        let chain: Vec<K> = (0..p_eff).flat_map(|_| stages_per_iter.iter().cloned()).collect();
        let mut dog = Watchdog::new(budget, stream_rows as u64);
        let rows = cur.as_slice().chunks(nx).map(|r| r.to_vec());
        let out_rows = run_chain_2d_resilient_engine(
            engine,
            &chain,
            nx,
            stream_rows,
            ny,
            rows,
            inj,
            &mut dog,
            rc,
        )
        .map_err(|e| match e {
            ExecError::Deadlock(t) => ExecError::Deadlock(t.with_stalls(&rec.stall_breakdown())),
            other => other,
        })?;
        let mut out = Batch2D::<T>::zeros(nx, ny, b);
        for (gy, row) in out_rows.into_iter().enumerate() {
            out.as_mut_slice()[gy * nx..(gy + 1) * nx].copy_from_slice(&row);
        }
        cur = out;
        remaining -= p_eff;
    }

    rec.counter_add("fault.injected", inj.injected());
    rec.counter_add("fault.axi.extra_cycles", fp.extra_axi_cycles);
    rec.counter_add("fault.axi.recovered", fp.bursts_recovered);
    let report =
        SimReport::from_plan(design, &fp.plan, niter as u64, power::fpga_power_w(dev, design));
    Ok((cur, report))
}

/// Fault-aware [`crate::exec3d::simulate_3d`] (see
/// [`simulate_2d_resilient`]); the streamed unit is a plane.
#[allow(clippy::too_many_arguments)]
pub fn simulate_3d_resilient<T: Element, K: StencilOp3D<T> + Clone>(
    dev: &FpgaDevice,
    design: &StencilDesign,
    stages_per_iter: &[K],
    input: &Batch3D<T>,
    niter: usize,
    inj: &mut FaultInjector,
    policy: &RetryPolicy,
    rec: &mut Recorder,
) -> Result<(Batch3D<T>, SimReport), ExecError> {
    simulate_3d_resilient_core(
        &ScalarEngine,
        dev,
        design,
        stages_per_iter,
        input,
        niter,
        inj,
        policy,
        rec,
    )
}

/// Engine-generic body of [`simulate_3d_resilient`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn simulate_3d_resilient_core<T: Element, K: Clone, E: Engine3D<T, K>>(
    engine: &E,
    dev: &FpgaDevice,
    design: &StencilDesign,
    stages_per_iter: &[K],
    input: &Batch3D<T>,
    niter: usize,
    inj: &mut FaultInjector,
    policy: &RetryPolicy,
    rec: &mut Recorder,
) -> Result<(Batch3D<T>, SimReport), ExecError> {
    if niter == 0 {
        return Err(ExecError::ShapeMismatch { detail: "niter must be positive".to_string() });
    }
    if stages_per_iter.len() != design.spec.stages {
        return Err(ExecError::ShapeMismatch {
            detail: format!(
                "design expects {} stages per iteration, got {}",
                design.spec.stages,
                stages_per_iter.len()
            ),
        });
    }
    let (nx, ny, nz, b) = (input.nx(), input.ny(), input.nz(), input.batch());
    check_mode(design, b)?;
    let wl = Workload::D3 { nx, ny, nz, batch: b };
    let fp = plan_with_faults(dev, design, &wl, niter as u64, inj, policy)?;
    let plane = nx * ny;
    let plane_cycles = cycles::design_row_cycles(dev, design, nx, nx) * ny as u64;
    let stream_planes = b * nz;
    let budget = pass_budget(design, stream_planes as u64, plane_cycles);

    let mut cur = input.clone();
    let mut remaining = niter;
    while remaining > 0 {
        let p_eff = design.p.min(remaining);
        let chain: Vec<K> = (0..p_eff).flat_map(|_| stages_per_iter.iter().cloned()).collect();
        let mut dog = Watchdog::new(budget, stream_planes as u64);
        let planes = cur.as_slice().chunks(plane).map(|p| p.to_vec());
        let out_planes = run_chain_3d_resilient_engine(
            engine,
            &chain,
            nx,
            ny,
            stream_planes,
            nz,
            planes,
            inj,
            &mut dog,
            plane_cycles,
        )
        .map_err(|e| match e {
            ExecError::Deadlock(t) => ExecError::Deadlock(t.with_stalls(&rec.stall_breakdown())),
            other => other,
        })?;
        let mut out = Batch3D::<T>::zeros(nx, ny, nz, b);
        for (gz, pl) in out_planes.into_iter().enumerate() {
            out.as_mut_slice()[gz * plane..(gz + 1) * plane].copy_from_slice(&pl);
        }
        cur = out;
        remaining -= p_eff;
    }

    rec.counter_add("fault.injected", inj.injected());
    rec.counter_add("fault.axi.extra_cycles", fp.extra_axi_cycles);
    rec.counter_add("fault.axi.recovered", fp.bursts_recovered);
    let report =
        SimReport::from_plan(design, &fp.plan, niter as u64, power::fpga_power_w(dev, design));
    Ok((cur, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::{synthesize, MemKind};
    use sf_faults::{FaultKind, FaultPlan};
    use sf_kernels::{reference, Jacobi3D, Poisson2D, StencilSpec};
    use sf_mesh::{norms, Mesh2D, Mesh3D};

    fn dev() -> FpgaDevice {
        FpgaDevice::u280()
    }

    fn design_2d(wl: &Workload, v: usize, p: usize) -> StencilDesign {
        synthesize(&dev(), &StencilSpec::poisson(), v, p, ExecMode::Baseline, MemKind::Hbm, wl)
            .unwrap()
    }

    #[allow(clippy::type_complexity)]
    fn run_2d(
        plan: FaultPlan,
        niter: usize,
    ) -> (Result<(Batch2D<f32>, SimReport), ExecError>, Mesh2D<f32>, FaultInjector) {
        let m = Mesh2D::<f32>::random(40, 24, 7, -1.0, 1.0);
        let wl = Workload::D2 { nx: 40, ny: 24, batch: 1 };
        let ds = design_2d(&wl, 8, 4);
        let batch = Batch2D::from_meshes(std::slice::from_ref(&m));
        let mut inj = FaultInjector::new(plan);
        let policy = RetryPolicy::default();
        let mut rec = Recorder::disabled();
        let r = simulate_2d_resilient(
            &dev(),
            &ds,
            &[Poisson2D],
            &batch,
            niter,
            &mut inj,
            &policy,
            &mut rec,
        );
        (r, m, inj)
    }

    #[test]
    fn disabled_injector_is_bit_exact() {
        let (r, m, inj) = run_2d(FaultInjector::disabled().plan().to_owned(), 12);
        let (out, rep) = r.unwrap();
        let expect = reference::run_2d(&Poisson2D, &m, 12);
        assert!(norms::bit_equal(out.mesh(0).as_slice(), expect.as_slice()));
        assert!(rep.total_cycles > 0);
        assert_eq!(inj.injected(), 0);
    }

    #[test]
    fn bitflip_completes_but_diverges_from_reference() {
        let (r, m, inj) = run_2d(FaultPlan::single(42, FaultKind::BitFlip, 1_000_000), 12);
        let (out, _) = r.unwrap();
        assert_eq!(inj.injected(), 1, "single-fault plan injects exactly once");
        let expect = reference::run_2d(&Poisson2D, &m, 12);
        assert!(
            !norms::bit_equal(out.mesh(0).as_slice(), expect.as_slice()),
            "a window-buffer bit flip must corrupt the result"
        );
    }

    #[test]
    fn fifo_drop_trips_the_watchdog() {
        let (r, _, inj) = run_2d(FaultPlan::single(7, FaultKind::FifoDrop, 1_000_000), 12);
        match r {
            Err(ExecError::Deadlock(trip)) => {
                assert!(trip.units_emitted < trip.units_expected);
                assert!(trip.to_string().contains("starved"), "{trip}");
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
        assert_eq!(inj.injected(), 1);
    }

    #[test]
    fn fifo_dup_completes_but_diverges() {
        let (r, m, _) = run_2d(FaultPlan::single(3, FaultKind::FifoDup, 1_000_000), 12);
        let (out, _) = r.unwrap();
        let expect = reference::run_2d(&Poisson2D, &m, 12);
        assert!(!norms::bit_equal(out.mesh(0).as_slice(), expect.as_slice()));
    }

    #[test]
    fn fifo_corrupt_completes_but_diverges() {
        let (r, m, _) = run_2d(FaultPlan::single(5, FaultKind::FifoCorrupt, 1_000_000), 12);
        let (out, _) = r.unwrap();
        let expect = reference::run_2d(&Poisson2D, &m, 12);
        assert!(!norms::bit_equal(out.mesh(0).as_slice(), expect.as_slice()));
    }

    #[test]
    fn axi_delay_recovers_and_charges_extra_cycles() {
        let (clean, _, _) = run_2d(FaultInjector::disabled().plan().to_owned(), 12);
        let (_, clean_rep) = clean.unwrap();
        let (r, m, _) = run_2d(
            FaultPlan { seed: 9, kind: FaultKind::AxiDelay, rate_ppm: 500_000, max_injections: 0 },
            12,
        );
        let (out, rep) = r.unwrap();
        // Numerically untouched but measurably slower.
        let expect = reference::run_2d(&Poisson2D, &m, 12);
        assert!(norms::bit_equal(out.mesh(0).as_slice(), expect.as_slice()));
        assert!(
            rep.total_cycles > clean_rep.total_cycles,
            "retry backoff must be visible in the plan: {} vs {}",
            rep.total_cycles,
            clean_rep.total_cycles
        );
    }

    #[test]
    fn axi_fail_exhausts_to_typed_error() {
        // 100 % failure rate over many bursts: some burst draws a failure
        // count above the retry budget.
        let (r, _, _) = run_2d(
            FaultPlan {
                seed: 11,
                kind: FaultKind::AxiFail,
                rate_ppm: 1_000_000,
                max_injections: 0,
            },
            12,
        );
        match r {
            Err(ExecError::AxiExhausted { attempts, .. }) => assert!(attempts > 0),
            other => panic!("expected AxiExhausted, got {other:?}"),
        }
    }

    #[test]
    fn shape_mismatch_is_an_error_not_a_panic() {
        let wl = Workload::D2 { nx: 16, ny: 8, batch: 4 };
        let ds = synthesize(
            &dev(),
            &StencilSpec::poisson(),
            8,
            2,
            ExecMode::Batched { b: 4 },
            MemKind::Hbm,
            &wl,
        )
        .unwrap();
        let batch = Batch2D::<f32>::zeros(16, 8, 3);
        let mut inj = FaultInjector::disabled();
        let mut rec = Recorder::disabled();
        let r = simulate_2d_resilient(
            &dev(),
            &ds,
            &[Poisson2D],
            &batch,
            2,
            &mut inj,
            &RetryPolicy::default(),
            &mut rec,
        );
        assert!(matches!(r, Err(ExecError::ShapeMismatch { .. })), "{r:?}");
    }

    #[test]
    fn resilient_3d_bit_exact_without_faults() {
        let m = Mesh3D::<f32>::random(12, 10, 8, 5, -1.0, 1.0);
        let wl = Workload::D3 { nx: 12, ny: 10, nz: 8, batch: 1 };
        let ds =
            synthesize(&dev(), &StencilSpec::jacobi(), 8, 3, ExecMode::Baseline, MemKind::Hbm, &wl)
                .unwrap();
        let batch = Batch3D::from_meshes(std::slice::from_ref(&m));
        let k = Jacobi3D::smoothing();
        let mut inj = FaultInjector::disabled();
        let mut rec = Recorder::disabled();
        let (out, _) = simulate_3d_resilient(
            &dev(),
            &ds,
            &[k],
            &batch,
            6,
            &mut inj,
            &RetryPolicy::default(),
            &mut rec,
        )
        .unwrap();
        let expect = reference::run_3d(&k, &m, 6);
        assert!(norms::bit_equal(out.mesh(0).as_slice(), expect.as_slice()));
    }

    #[test]
    fn resilient_3d_drop_trips_watchdog() {
        let m = Mesh3D::<f32>::random(12, 10, 8, 5, -1.0, 1.0);
        let wl = Workload::D3 { nx: 12, ny: 10, nz: 8, batch: 1 };
        let ds =
            synthesize(&dev(), &StencilSpec::jacobi(), 8, 3, ExecMode::Baseline, MemKind::Hbm, &wl)
                .unwrap();
        let batch = Batch3D::from_meshes(std::slice::from_ref(&m));
        let k = Jacobi3D::smoothing();
        let mut inj = FaultInjector::new(FaultPlan::single(13, FaultKind::FifoDrop, 1_000_000));
        let mut rec = Recorder::disabled();
        let r = simulate_3d_resilient(
            &dev(),
            &ds,
            &[k],
            &batch,
            6,
            &mut inj,
            &RetryPolicy::default(),
            &mut rec,
        );
        assert!(matches!(r, Err(ExecError::Deadlock(_))), "{r:?}");
    }

    #[test]
    fn same_seed_reproduces_identical_fault_runs() {
        let plan = FaultPlan::single(42, FaultKind::BitFlip, 1_000_000);
        let (r1, _, i1) = run_2d(plan, 12);
        let (r2, _, i2) = run_2d(plan, 12);
        let (o1, _) = r1.unwrap();
        let (o2, _) = r2.unwrap();
        assert!(norms::bit_equal(o1.mesh(0).as_slice(), o2.mesh(0).as_slice()));
        assert_eq!(i1.log(), i2.log());
    }
}
