//! The paper's reported numbers (Tables II–VI), embedded for side-by-side
//! comparison in the regenerated experiments and in EXPERIMENTS.md.
//!
//! Bandwidths in GB/s, energies in kJ, as printed in the paper.

/// Table II — baseline/batching model parameters.
/// `(app, freq_mhz, gdsp, p_model, p_actual)`.
pub const TABLE2: [(&str, f64, usize, usize, usize); 3] = [
    ("Poisson-5pt-2D", 250.0, 14, 68, 60),
    ("Jacobi-7pt-3D", 246.0, 33, 28, 29),
    ("Reverse Time Migration", 261.0, 2444, 3, 3),
];

/// Table III — spatial blocking model parameters.
/// `(app, p, v, m, n, t, valid_ratio_pct)`.
#[allow(clippy::type_complexity)]
pub const TABLE3: [(&str, usize, usize, usize, Option<usize>, f64, f64); 2] = [
    ("Poisson-5pt-2D", 60, 8, 8192, None, 472.0, 98.5),
    ("Jacobi-7pt-3D", 3, 64, 768, Some(768), 189.0, 98.4),
];

/// Table IV (top) — Poisson baseline & batched bandwidth (GB/s).
/// `(nx, ny, base_fpga, base_gpu, b100_fpga, b100_gpu, b1000_fpga, b1000_gpu,
///   energy1000_fpga_kj, energy1000_gpu_kj)` — 1000B columns only published
/// for the first three meshes.
#[allow(clippy::type_complexity)]
pub const TABLE4_BASE: [(
    usize,
    usize,
    f64,
    f64,
    f64,
    f64,
    Option<f64>,
    Option<f64>,
    Option<f64>,
    Option<f64>,
); 6] = [
    (200, 100, 384.0, 18.0, 857.0, 404.0, Some(867.0), Some(530.0), Some(0.77), Some(3.48)),
    (200, 200, 543.0, 32.0, 886.0, 465.0, Some(892.0), Some(540.0), Some(1.50), Some(6.74)),
    (300, 150, 535.0, 38.0, 901.0, 483.0, Some(907.0), Some(560.0), Some(1.66), Some(7.60)),
    (300, 300, 681.0, 69.0, 922.0, 530.0, None, None, None, None),
    (400, 200, 612.0, 62.0, 889.0, 536.0, None, None, None, None),
    (400, 400, 735.0, 116.0, 904.0, 560.0, None, None, None, None),
];

/// Table IV (bottom) — Poisson spatial blocking, 100 iterations.
/// `(n, tile, fpga_bw, gpu_bw, fpga_kj, gpu_kj)` — GPU numbers shared per mesh.
pub const TABLE4_TILED: [(usize, usize, f64, f64, f64, f64); 5] = [
    (15_000, 1024, 805.0, 607.0, 0.93, 2.91),
    (15_000, 4096, 892.0, 607.0, 0.84, 2.91),
    (15_000, 8000, 905.0, 607.0, 0.83, 2.91),
    (20_000, 1024, 800.0, 609.0, 1.67, 4.96),
    (20_000, 4096, 879.0, 609.0, 1.52, 4.96),
];

/// Table V (top) — Jacobi baseline (29 k iters) & batched (2.9 k iters).
/// `(n, base_fpga, base_gpu, b10_fpga, b10_gpu, b50_fpga, b50_gpu,
///   energy50_fpga_kj, energy50_gpu_kj)` — 50B only for the first three.
#[allow(clippy::type_complexity)]
pub const TABLE5_BASE: [(
    usize,
    f64,
    f64,
    f64,
    f64,
    Option<f64>,
    Option<f64>,
    Option<f64>,
    Option<f64>,
); 5] = [
    (50, 202.0, 83.0, 307.0, 284.0, Some(323.0), Some(404.0), Some(0.04), Some(0.07)),
    (100, 301.0, 284.0, 378.0, 434.0, Some(387.0), Some(469.0), Some(0.27), Some(0.51)),
    (200, 374.0, 496.0, 421.0, 548.0, Some(426.0), Some(543.0), Some(1.96), Some(3.77)),
    (250, 391.0, 559.0, 431.0, 585.0, None, None, None, None),
    (300, 403.0, 553.0, 438.0, 569.0, None, None, None, None),
];

/// Table V (bottom) — Jacobi spatial blocking, 120 iterations.
/// `(mesh_label, nx, ny, nz, tile, fpga_bw, gpu_bw, fpga_kj, gpu_kj)`.
#[allow(clippy::type_complexity)]
pub const TABLE5_TILED: [(&str, usize, usize, usize, usize, f64, f64, f64, f64); 6] = [
    ("600^3", 600, 600, 600, 256, 233.0, 392.0, 0.062, 0.106),
    ("600^3", 600, 600, 600, 512, 281.0, 392.0, 0.051, 0.106),
    ("600^3", 600, 600, 600, 640, 292.0, 392.0, 0.049, 0.106),
    ("1800x1800x100", 1800, 1800, 100, 256, 247.0, 363.0, 0.088, 0.143),
    ("1800x1800x100", 1800, 1800, 100, 512, 270.0, 363.0, 0.080, 0.143),
    ("1800x1800x100", 1800, 1800, 100, 640, 273.0, 363.0, 0.079, 0.143),
];

/// Table VI — RTM baseline (1800 iters) & batched (180 iters).
/// `(nx, ny, nz, base_fpga, base_gpu, b20_fpga, b20_gpu, b40_fpga, b40_gpu,
///   energy40_fpga_kj, energy40_gpu_kj)`.
#[allow(clippy::type_complexity)]
pub const TABLE6: [(usize, usize, usize, f64, f64, f64, f64, f64, f64, f64, f64); 5] = [
    (32, 32, 32, 108.0, 130.0, 225.0, 251.0, 232.0, 266.0, 0.043, 0.086),
    (32, 32, 50, 141.0, 163.0, 247.0, 263.0, 253.0, 274.0, 0.062, 0.133),
    (50, 50, 16, 77.0, 124.0, 210.0, 251.0, 220.0, 263.0, 0.055, 0.111),
    (50, 50, 32, 127.0, 155.0, 262.0, 266.0, 270.0, 272.0, 0.091, 0.218),
    (50, 50, 50, 165.0, 179.0, 287.0, 271.0, 293.0, 275.0, 0.130, 0.338),
];

/// Iteration counts used by the paper's runs.
pub mod iters {
    /// Poisson baseline & batched.
    pub const POISSON: u64 = 60_000;
    /// Poisson tiled. The paper does not print this count, but its Table IV
    /// energies pin it down: 0.93 kJ at ~70 W is ≈ 13 s, which at the
    /// reported 805 GB/s over a 15000² mesh is 6000 iterations (and the
    /// 20000² row cross-checks: 1.67 kJ ⇔ 24 s ⇔ 6000 iterations at
    /// 800 GB/s). 6000 is also a whole multiple of p = 60.
    pub const POISSON_TILED: u64 = 6_000;
    /// Jacobi baseline.
    pub const JACOBI: u64 = 29_000;
    /// Jacobi batched.
    pub const JACOBI_BATCHED: u64 = 2_900;
    /// Jacobi tiled.
    pub const JACOBI_TILED: u64 = 120;
    /// RTM baseline.
    pub const RTM: u64 = 1_800;
    /// RTM batched.
    pub const RTM_BATCHED: u64 = 180;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_internally_consistent() {
        assert_eq!(TABLE2.len(), 3);
        assert_eq!(TABLE4_BASE.len(), 6);
        assert_eq!(TABLE5_BASE.len(), 5);
        assert_eq!(TABLE6.len(), 5);
        // batching always improves the paper's FPGA bandwidth
        for r in &TABLE4_BASE {
            assert!(r.4 > r.2, "100B must beat baseline for {}x{}", r.0, r.1);
        }
        for r in &TABLE6 {
            assert!(r.5 > r.3, "RTM 20B must beat baseline");
        }
    }
}
