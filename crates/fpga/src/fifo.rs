//! Stream FIFOs.
//!
//! §III: "A perfect data reuse path can be created by (1) using a
//! First-In-First-Out (FIFO) buffer to fetch data from DDR4/HBM memory
//! without interruption (allowing burst transfers)…". HLS dataflow designs
//! also place FIFOs between chained kernels. This module provides:
//!
//! * [`Fifo`] — a bounded queue with backpressure semantics and occupancy
//!   statistics (high-water mark, stall count), the behavioral element;
//! * [`interstage_depth`] / [`fifo_brams`] — the sizing rules the design
//!   synthesizer uses to charge FIFO BRAM.

use serde::{Deserialize, Serialize};
use sf_faults::{Watchdog, WatchdogTrip};
use std::collections::VecDeque;

/// Error returned when pushing into a full FIFO (backpressure).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Full;

/// A bounded FIFO with occupancy statistics.
#[derive(Clone, Debug)]
pub struct Fifo<T> {
    buf: VecDeque<T>,
    capacity: usize,
    high_water: usize,
    stalls: u64,
    total_pushes: u64,
    underflows: u64,
}

impl<T> Fifo<T> {
    /// Create a FIFO of the given capacity (> 0).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "FIFO capacity must be positive");
        Fifo {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            high_water: 0,
            stalls: 0,
            total_pushes: 0,
            underflows: 0,
        }
    }

    /// Push one element; `Err(Full)` applies backpressure (and is counted).
    pub fn try_push(&mut self, v: T) -> Result<(), Full> {
        if self.buf.len() == self.capacity {
            self.stalls += 1;
            return Err(Full);
        }
        self.buf.push_back(v);
        self.total_pushes += 1;
        self.high_water = self.high_water.max(self.buf.len());
        Ok(())
    }

    /// Pop the oldest element. A pop from an empty FIFO is counted as an
    /// underflow (consumer starvation) and returns `None`.
    pub fn pop(&mut self) -> Option<T> {
        let v = self.buf.pop_front();
        if v.is_none() {
            self.underflows += 1;
        }
        v
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// `true` when at capacity.
    pub fn is_full(&self) -> bool {
        self.buf.len() == self.capacity
    }

    /// Deepest occupancy observed — what the hardware FIFO must hold.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Rejected pushes (producer stalls).
    pub fn stalls(&self) -> u64 {
        self.stalls
    }

    /// Pops attempted on an empty FIFO (consumer starvation).
    pub fn underflows(&self) -> u64 {
        self.underflows
    }

    /// Accepted pushes.
    pub fn total_pushes(&self) -> u64 {
        self.total_pushes
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Fraction of push attempts rejected for backpressure:
    /// `stalls / (stalls + total_pushes)`, 0.0 before any attempt.
    pub fn stall_rate(&self) -> f64 {
        let attempts = self.stalls + self.total_pushes;
        if attempts == 0 {
            return 0.0;
        }
        self.stalls as f64 / attempts as f64
    }
}

/// Depth of the FIFO between two chained pipeline stages: two vector words
/// of slack per AXI burst so a burst refill never stalls the consumer —
/// `max(16, 2 · burst_bytes / (V · elem_bytes))` elements.
pub fn interstage_depth(burst_bytes: usize, v: usize, elem_bytes: usize) -> usize {
    (2 * burst_bytes / (v * elem_bytes).max(1)).max(16)
}

/// Statistics snapshot for reporting.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FifoStats {
    /// Configured capacity.
    pub capacity: usize,
    /// High-water mark.
    pub high_water: usize,
    /// Producer stalls.
    pub stalls: u64,
    /// Pops attempted on an empty FIFO.
    pub underflows: u64,
}

impl<T> Fifo<T> {
    /// Snapshot the statistics.
    pub fn stats(&self) -> FifoStats {
        FifoStats {
            capacity: self.capacity,
            high_water: self.high_water,
            stalls: self.stalls,
            underflows: self.underflows,
        }
    }
}

/// Result of a [`simulate_backpressure`] run.
#[derive(Copy, Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct BackpressureReport {
    /// Final FIFO statistics (capacity, high-water, stall count).
    pub stats: FifoStats,
    /// Elements accepted into the FIFO.
    pub total_pushes: u64,
    /// Cycles the producer spent blocked on a full FIFO.
    pub stall_cycles: u64,
    /// Cycle at which the consumer drained the last element.
    pub finish_cycle: u64,
}

/// Cycle-stepped producer/consumer rate model over a real [`Fifo`].
///
/// The producer emits one element every `produce_interval` cycles, the
/// consumer drains one every `drain_interval` cycles, through a FIFO of
/// `capacity` elements. Every cycle the producer is ready but the FIFO is
/// full counts as one stall cycle — the backpressure the dataflow
/// simulator attributes to inter-stage FIFOs when the downstream (write)
/// side is slower than the upstream (compute) side.
pub fn simulate_backpressure(
    items: u64,
    produce_interval: u64,
    drain_interval: u64,
    capacity: usize,
) -> BackpressureReport {
    assert!(produce_interval > 0 && drain_interval > 0);
    let mut fifo: Fifo<u64> = Fifo::new(capacity);
    let mut produced: u64 = 0;
    let mut drained: u64 = 0;
    let mut next_produce: u64 = 0;
    let mut next_drain: u64 = drain_interval;
    let mut stall_cycles: u64 = 0;
    let mut cycle: u64 = 0;
    let mut finish_cycle: u64 = 0;
    // Hard bound so a degenerate parameterization cannot loop forever.
    let horizon = items
        .saturating_mul(produce_interval.max(drain_interval))
        .saturating_add(items.saturating_mul(capacity as u64))
        .saturating_add(produce_interval + drain_interval);
    while drained < items && cycle <= horizon {
        if produced < items && cycle >= next_produce {
            match fifo.try_push(produced) {
                Ok(()) => {
                    produced += 1;
                    next_produce = cycle + produce_interval;
                }
                Err(Full) => stall_cycles += 1,
            }
        }
        if cycle >= next_drain && fifo.pop().is_some() {
            drained += 1;
            next_drain = cycle + drain_interval;
            finish_cycle = cycle;
        }
        cycle += 1;
    }
    BackpressureReport {
        stats: fifo.stats(),
        total_pushes: fifo.total_pushes(),
        stall_cycles,
        finish_cycle,
    }
}

/// [`simulate_backpressure`] guarded by a [`Watchdog`] instead of the silent
/// horizon bound: the watchdog observes each drained element, and a run that
/// stops making forward progress for `watchdog_budget` cycles returns the
/// structured [`WatchdogTrip`] diagnosis instead of a truncated report.
///
/// `wedge_after_drains` artificially stops the consumer after that many
/// elements — an injected downstream stall that wedges the pipeline once the
/// FIFO fills, exactly the deadlock the watchdog exists to catch.
pub fn simulate_backpressure_watched(
    items: u64,
    produce_interval: u64,
    drain_interval: u64,
    capacity: usize,
    wedge_after_drains: Option<u64>,
    watchdog_budget: u64,
) -> Result<BackpressureReport, WatchdogTrip> {
    assert!(produce_interval > 0 && drain_interval > 0);
    let mut fifo: Fifo<u64> = Fifo::new(capacity);
    let mut dog = Watchdog::new(watchdog_budget, items);
    let mut produced: u64 = 0;
    let mut drained: u64 = 0;
    let mut next_produce: u64 = 0;
    let mut next_drain: u64 = drain_interval;
    let mut stall_cycles: u64 = 0;
    let mut cycle: u64 = 0;
    let mut finish_cycle: u64 = 0;
    while drained < items {
        if produced < items && cycle >= next_produce {
            match fifo.try_push(produced) {
                Ok(()) => {
                    produced += 1;
                    next_produce = cycle + produce_interval;
                }
                Err(Full) => stall_cycles += 1,
            }
        }
        let consumer_wedged = wedge_after_drains.is_some_and(|n| drained >= n);
        if !consumer_wedged && cycle >= next_drain && fifo.pop().is_some() {
            drained += 1;
            next_drain = cycle + drain_interval;
            finish_cycle = cycle;
            dog.observe(cycle, 1);
        }
        dog.check(
            cycle,
            &format!(
                "fifo {}/{} occupied, producer {} stall cycles",
                fifo.len(),
                fifo.capacity(),
                stall_cycles
            ),
        )?;
        cycle += 1;
    }
    Ok(BackpressureReport {
        stats: fifo.stats(),
        total_pushes: fifo.total_pushes(),
        stall_cycles,
        finish_cycle,
    })
}

/// BRAM18/36 blocks for a design's stream FIFOs: one FIFO per chained stage
/// boundary plus one read- and one write-side memory FIFO, each sized by
/// [`interstage_depth`] and quantized to BRAM36.
pub fn fifo_brams(
    bram_block_bytes: usize,
    burst_bytes: usize,
    v: usize,
    elem_bytes: usize,
    chained_stages: usize,
) -> usize {
    let depth = interstage_depth(burst_bytes, v, elem_bytes);
    let bytes = depth * v * elem_bytes;
    let blocks_per_fifo = bytes.div_ceil(bram_block_bytes).max(1);
    let n_fifos = chained_stages.saturating_sub(1) + 2;
    blocks_per_fifo * n_fifos
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_order() {
        let mut f = Fifo::new(4);
        for i in 0..4 {
            f.try_push(i).unwrap();
        }
        assert!(f.is_full());
        assert_eq!(f.try_push(9), Err(Full));
        assert_eq!(f.stalls(), 1);
        assert_eq!(f.pop(), Some(0));
        assert_eq!(f.pop(), Some(1));
        f.try_push(4).unwrap();
        assert_eq!(f.pop(), Some(2));
        assert_eq!(f.pop(), Some(3));
        assert_eq!(f.pop(), Some(4));
        assert_eq!(f.pop(), None);
        assert!(f.is_empty());
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut f = Fifo::new(8);
        for i in 0..5 {
            f.try_push(i).unwrap();
        }
        for _ in 0..5 {
            f.pop();
        }
        for i in 0..3 {
            f.try_push(i).unwrap();
        }
        assert_eq!(f.high_water(), 5);
        assert_eq!(f.total_pushes(), 8);
        let s = f.stats();
        assert_eq!(s.capacity, 8);
        assert_eq!(s.high_water, 5);
        assert_eq!(s.stalls, 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = Fifo::<u8>::new(0);
    }

    #[test]
    fn interstage_depth_sizing() {
        // Poisson V=8: 2·4096/(8·4) = 256 elements
        assert_eq!(interstage_depth(4096, 8, 4), 256);
        // RTM V=1 packed 80 B: 2·4096/80 = 102
        assert_eq!(interstage_depth(4096, 1, 80), 102);
        // floor at 16
        assert_eq!(interstage_depth(64, 64, 4), 16);
    }

    #[test]
    fn stall_rate_counts_rejected_fraction() {
        let mut f = Fifo::new(2);
        assert_eq!(f.stall_rate(), 0.0);
        f.try_push(0).unwrap();
        f.try_push(1).unwrap();
        assert_eq!(f.try_push(2), Err(Full));
        assert_eq!(f.try_push(3), Err(Full));
        // 2 accepted, 2 rejected → 50 % stall rate.
        assert!((f.stall_rate() - 0.5).abs() < 1e-12);
        assert_eq!(f.capacity(), 2);
    }

    #[test]
    fn matched_rates_never_stall() {
        let r = simulate_backpressure(100, 3, 3, 4);
        assert_eq!(r.stall_cycles, 0);
        assert_eq!(r.stats.stalls, 0);
        assert_eq!(r.total_pushes, 100);
        // Steady state keeps at most a couple of elements in flight.
        assert!(r.stats.high_water <= 2, "high_water {}", r.stats.high_water);
    }

    #[test]
    fn fast_producer_slow_consumer_stalls() {
        // Producer twice as fast as the consumer behind a small FIFO: once
        // the FIFO fills, the producer stalls roughly every other cycle.
        let r = simulate_backpressure(200, 1, 2, 4);
        assert!(r.stall_cycles > 0);
        assert_eq!(r.stats.high_water, 4, "FIFO should hit capacity");
        assert_eq!(r.total_pushes, 200);
        // Finish time is consumer-bound: ~2 cycles per element.
        assert!(r.finish_cycle >= 2 * 200 - 2);
    }

    #[test]
    fn deep_fifo_absorbs_a_burst() {
        // Same rates, FIFO deep enough to hold everything → no stalls.
        let r = simulate_backpressure(50, 1, 2, 64);
        assert_eq!(r.stall_cycles, 0);
        assert_eq!(r.stats.stalls, 0);
        // The burst piles up (~half the items) but never hits capacity.
        assert!(r.stats.high_water > 20 && r.stats.high_water < 64);
    }

    #[test]
    fn overflow_under_sustained_backpressure_bounds_occupancy() {
        // Producer 4× faster than the consumer: the FIFO must saturate at
        // capacity (never beyond), and every surplus push must be counted
        // as a stall, not silently dropped or grown.
        let r = simulate_backpressure(400, 1, 4, 8);
        assert_eq!(r.stats.high_water, 8, "occupancy must cap at capacity");
        assert_eq!(r.total_pushes, 400, "every element is eventually accepted");
        // Sustained backpressure: producer blocked most of the run.
        assert!(r.stall_cycles > 400, "expected heavy stalling, got {}", r.stall_cycles);
        assert!(r.stats.stalls > 0);
    }

    #[test]
    fn underflow_on_drained_producer_is_counted() {
        let mut f = Fifo::<u32>::new(4);
        assert_eq!(f.pop(), None);
        assert_eq!(f.underflows(), 1);
        f.try_push(1).unwrap();
        assert_eq!(f.pop(), Some(1));
        assert_eq!(f.pop(), None);
        assert_eq!(f.pop(), None);
        assert_eq!(f.underflows(), 3);
        assert_eq!(f.stats().underflows, 3);
    }

    #[test]
    fn slow_producer_starves_consumer_underflows() {
        // Consumer polls every cycle, producer delivers every 8 cycles: the
        // consumer finds the FIFO empty most of the time.
        let r = simulate_backpressure(20, 8, 1, 4);
        assert!(r.stats.underflows > 0, "starved consumer must record underflows");
        assert_eq!(r.total_pushes, 20);
    }

    #[test]
    fn watched_simulation_matches_unwatched_when_healthy() {
        let plain = simulate_backpressure(200, 1, 2, 4);
        let watched = simulate_backpressure_watched(200, 1, 2, 4, None, 1_000).unwrap();
        assert_eq!(plain, watched);
    }

    #[test]
    fn watchdog_fires_on_wedged_pipeline() {
        // Consumer stops after 10 elements: FIFO fills, producer stalls
        // forever. The watchdog must trip with a structured diagnosis
        // instead of hanging or silently truncating.
        let trip = simulate_backpressure_watched(100, 1, 2, 8, Some(10), 500).unwrap_err();
        assert_eq!(trip.units_emitted, 10);
        assert_eq!(trip.units_expected, 100);
        assert!(trip.tripped_at_cycle > trip.last_progress_cycle + 500);
        let msg = trip.to_string();
        assert!(msg.contains("no forward progress"), "{msg}");
        assert!(msg.contains("8/8 occupied"), "diagnosis must show the full FIFO: {msg}");
    }

    #[test]
    fn watchdog_fires_when_consumer_never_starts() {
        let trip = simulate_backpressure_watched(10, 2, 3, 4, Some(0), 100).unwrap_err();
        assert_eq!(trip.units_emitted, 0);
        assert_eq!(trip.last_progress_cycle, 0);
    }

    #[test]
    fn fifo_bram_accounting() {
        // Poisson p=60: 61 FIFOs of 256×32 B = 8 KiB → 2 BRAM36 each
        let b = fifo_brams(4608, 4096, 8, 4, 60);
        assert_eq!(b, 61 * 2);
        // single-stage chain still needs the two memory-side FIFOs
        let b1 = fifo_brams(4608, 4096, 8, 4, 1);
        assert_eq!(b1, 2 * 2);
    }
}
