//! Property tests tying the abstract domains to the concrete kernels: the
//! probed footprint stays inside the declared reach, the counted ops match
//! the declared `flops_per_cell()` for every paper application, the
//! interval range is sound against concrete execution on randomized meshes,
//! and the stability verdict agrees with what actually happens when the
//! kernel is iterated.

use proptest::prelude::*;
use sf_absint::{analyze_2d, app_diagnostics, AbsintConfig, StabilityVerdict};
use sf_kernels::{reference, AppId, StarStencil2D, StencilSpec};
use sf_mesh::Mesh2D;

/// Deterministic star stencil within `radius`, derived from a seed (the
/// vendored proptest shim has no composite strategies): the center plus a
/// seed-dependent set of symmetric axis points with bounded weights.
fn star_from_seed(seed: u64, radius: i32) -> StarStencil2D {
    let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = move || {
        s ^= s >> 12;
        s ^= s << 25;
        s ^= s >> 27;
        s.wrapping_mul(0x2545F4914F6CDD1D)
    };
    let unit = |r: u64| (r >> 11) as f32 / (1u64 << 53) as f32;
    let mut points = vec![(0, 0, unit(next()) * 2.0 - 1.0)];
    let pairs = 1 + (next() % 4) as usize;
    for _ in 0..pairs {
        let d = 1 + (next() % radius as u64) as i32;
        let horizontal = next() % 2 == 0;
        let w = unit(next()) - 0.5;
        let (dx, dy) = if horizontal { (d, 0) } else { (0, d) };
        // both sides, so footprints stay symmetric like real stencils
        points.push((dx, dy, w));
        points.push((-dx, -dy, w));
    }
    StarStencil2D::new(points)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For every paper application, at any unroll factor, the extracted
    /// footprint fits the declared reach and the counted ops equal the
    /// declared `flops_per_cell()`/`G_dsp` — i.e. the K-rules stay clean.
    #[test]
    fn paper_apps_extracted_truth_matches_declarations(p in 1usize..64, which in 0usize..3) {
        let app = AppId::ALL[which];
        let spec = app.spec();
        let a = sf_absint::analyze_app(app).unwrap();
        prop_assert!(a.footprint.radius <= spec.radius());
        prop_assert!(a.footprint.offsets.iter().all(|&(dx, dy, dz)| {
            dx.unsigned_abs().max(dy.unsigned_abs()).max(dz.unsigned_abs()) as usize
                <= spec.radius()
        }));
        prop_assert_eq!(a.footprint.tally.flops() as usize, spec.flops_per_cell());
        prop_assert_eq!(a.footprint.tally.gdsp(spec.format), spec.gdsp());
        prop_assert!(app_diagnostics(&spec, p).is_empty());
    }

    /// Random custom stencils: the probed tally always equals the stencil's
    /// own declared op count, and the probed radius never exceeds the
    /// radius its spec derives.
    #[test]
    fn random_star_counted_ops_match_declaration(seed in 0u64..10_000) {
        let k = star_from_seed(seed, 3);
        let f = sf_absint::footprint::extract_2d(&k);
        prop_assert_eq!(f.tally.as_op_count(), k.op_count());
        prop_assert!(f.radius <= k.spec().radius());
    }

    /// Interval soundness: one concrete update on a random mesh lands
    /// inside the interval computed from the mesh's value range.
    #[test]
    fn interval_bounds_concrete_execution(
        kseed in 0u64..10_000,
        nx in 5usize..24,
        ny in 5usize..24,
        seed in 0u64..500,
        lo in -2.0f32..0.0,
        span in 0.1f32..3.0,
    ) {
        let k = star_from_seed(kseed, 2);
        let hi = lo + span;
        let m = Mesh2D::<f32>::random(nx, ny, seed, lo, hi);
        let cfg = AbsintConfig { input_range: (lo, hi), ..AbsintConfig::default() };
        let a = analyze_2d(&k, &cfg);
        let out = reference::step_2d(&k, &m);
        let r = k.spec().radius();
        prop_assume!(nx > 2 * r && ny > 2 * r);
        for y in r..ny - r {
            for x in r..nx - r {
                let v = out.get(x, y) as f64;
                prop_assert!(
                    v >= a.range.lo - 1e-5 && v <= a.range.hi + 1e-5,
                    "concrete {} outside abstract [{}, {}]", v, a.range.lo, a.range.hi
                );
            }
        }
    }

    /// Stability soundness on diffusive steps: a CFL-stable heat step must
    /// never grow the max-norm of a random field when iterated, and the
    /// verdict must call it stable; an overdriven step must be rejected.
    #[test]
    fn stability_verdict_matches_iterated_behaviour(
        alpha in 0.01f32..0.24,
        seed in 0u64..200,
    ) {
        let cfg = AbsintConfig::default();
        let stable = StarStencil2D::laplace5(alpha, 1.0 - 4.0 * alpha);
        let a = analyze_2d(&stable, &cfg);
        prop_assert!(matches!(a.stability, StabilityVerdict::Stable { .. }), "{:?}", a.stability);
        let m = Mesh2D::<f32>::random(24, 24, seed, -1.0, 1.0);
        let before = m.as_slice().iter().fold(0.0f32, |acc, v| acc.max(v.abs()));
        let after_mesh = reference::run_2d(&stable, &m, 20);
        let after = after_mesh.as_slice().iter().fold(0.0f32, |acc, v| acc.max(v.abs()));
        prop_assert!(after <= before + 1e-4, "stable step grew {} -> {}", before, after);

        let over = 0.3 + alpha; // > 1/4: von Neumann-unstable
        let unstable = StarStencil2D::laplace5(over, 1.0 - 4.0 * over);
        let a = analyze_2d(&unstable, &cfg);
        prop_assert!(
            matches!(a.stability, StabilityVerdict::Unstable { .. }),
            "{:?}", a.stability
        );
    }
}

/// The declared spec drifted from the kernel: the K-rules fire through the
/// public `app_diagnostics` path end to end (per-rule fixtures live in
/// `sf_absint::rules` unit tests).
#[test]
fn drifted_specs_fire_k_rules_through_public_api() {
    use sf_check::RuleId;

    let mut shrunk = StencilSpec::rtm();
    shrunk.order = 2; // true radius is 4
    let ds = app_diagnostics(&shrunk, 3);
    assert!(ds.iter().any(|d| d.rule == RuleId::KernelFootprint), "{ds:?}");

    let mut drifted = StencilSpec::jacobi();
    drifted.ops = sf_kernels::OpCount::new(50, 50, 0);
    let ds = app_diagnostics(&drifted, 8);
    assert!(ds.iter().any(|d| d.rule == RuleId::KernelOpCount), "{ds:?}");
}
