//! Ordered parallel map over owned work items.

use std::sync::{Mutex, MutexGuard};

/// Lock a mutex, recovering the data from a poisoned lock.
///
/// Every value guarded here is a plain collection with no invariants that
/// a panicking worker could half-update (items are popped whole, results
/// pushed whole), so continuing with the inner data is sound. The panic
/// itself still propagates out of [`std::thread::scope`] when the worker
/// is joined, so a poisoned lock never turns into a silently wrong result.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Map `f` over `items` on up to `jobs` worker threads, returning results
/// in input order.
///
/// The closure receives `(index, item)` so callers can seed per-item state
/// (RNG streams, trace track prefixes) from the stable index rather than
/// from anything scheduling-dependent. Determinism contract: for a pure
/// `f`, the returned vector is identical for every `jobs` value — workers
/// pull items from a shared queue in index order and results are reordered
/// by index before returning.
///
/// `jobs <= 1` (or a single item) short-circuits to a plain sequential
/// loop with no thread or lock overhead, so the serial path and the
/// parallel path are the same code shape either way.
///
/// # Panics
/// If `f` panics on any item, the panic propagates to the caller after all
/// workers finish (the behaviour of [`std::thread::scope`]).
pub fn par_map<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let workers = jobs.max(1).min(n);
    if workers <= 1 {
        return items.into_iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let queue = Mutex::new(items.into_iter().enumerate());
    let results = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| loop {
                    // Hold the queue lock only to pop; compute unlocked.
                    let next = lock(&queue).next();
                    match next {
                        Some((i, item)) => {
                            let r = f(i, item);
                            lock(&results).push((i, r));
                        }
                        None => break,
                    }
                })
            })
            .collect();
        // Join explicitly so a worker's original panic payload reaches the
        // caller (an implicit scope join would replace it with the generic
        // "a scoped thread panicked" message).
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });

    let mut out = match results.into_inner() {
        Ok(v) => v,
        Err(poisoned) => poisoned.into_inner(),
    };
    out.sort_by_key(|(i, _)| *i);
    out.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order_serial() {
        let out = par_map(1, vec![1u64, 2, 3, 4], |i, x| (i, x * 10));
        assert_eq!(out, vec![(0, 10), (1, 20), (2, 30), (3, 40)]);
    }

    #[test]
    fn maps_in_order_parallel() {
        let items: Vec<u64> = (0..100).collect();
        let serial = par_map(1, items.clone(), |i, x| i as u64 * 1000 + x * x);
        for jobs in [2, 3, 8, 64] {
            let par = par_map(jobs, items.clone(), |i, x| i as u64 * 1000 + x * x);
            assert_eq!(par, serial, "jobs={jobs} must match serial");
        }
    }

    #[test]
    fn empty_and_singleton() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(4, empty, |_, x: u32| x).is_empty());
        assert_eq!(par_map(4, vec![7u32], |i, x| (i, x)), vec![(0, 7)]);
    }

    #[test]
    fn more_workers_than_items() {
        let out = par_map(16, vec![1u32, 2], |_, x| x + 1);
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        let _ = par_map(2, vec![0u32, 1, 2, 3], |_, x| {
            if x == 2 {
                panic!("boom");
            }
            x
        });
    }

    #[test]
    fn non_copy_items_move_through() {
        let items = vec!["a".to_string(), "b".to_string(), "c".to_string()];
        let out = par_map(2, items, |i, s| format!("{i}:{s}"));
        assert_eq!(out, vec!["0:a", "1:b", "2:c"]);
    }
}
