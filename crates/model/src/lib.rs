#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # sf-model — the paper's predictive analytic model
//!
//! The second headline contribution of the paper is "a predictive analytic
//! model that provides estimates for determining the feasibility of
//! implementing a given stencil application on an FPGA using the proposed
//! design strategy … It predicts the runtime of the resulting FPGA synthesis
//! of the application accurate to within ±15 % of the achieved runtime."
//!
//! This crate implements that model:
//!
//! * [`equations`] — the paper's equations (2)–(15) as documented free
//!   functions (cycle counts, per-cell cost, blocked throughput, batching).
//! * [`feasibility`] — `V_max` from channel bandwidth (eq. 4), `p_dsp`
//!   (eq. 6), `p_mem` (eq. 7), and the §VI "determinants" as a
//!   [`feasibility::FeasibilityReport`].
//! * [`blocking`] — tile-size optimization: `M_opt = sqrt(mem/kpD)`
//!   (eq. 11), `p_max = M/3D` (eq. 12), and the *quantized* tile
//!   recommendation that reproduces the paper's concrete `M = 8192` /
//!   `M = N = 768` choices.
//! * [`mod@predict`] — runtime predictions for a synthesized design:
//!   [`predict::PredictionLevel::Ideal`] is the pure paper model;
//!   [`predict::PredictionLevel::Extended`] adds the two calibrated
//!   overheads (per-row issue gap, host enqueue latency) that §IV discusses
//!   qualitatively.
//! * [`dse`] — design-space exploration: sweep `(V, p, tile)`, synthesize
//!   each candidate on the simulated device, rank by predicted runtime —
//!   the "model significantly narrows the design space" workflow of §V-A.
//! * [`accuracy`] — the ±15 % validation harness comparing predictions
//!   against the cycle-level simulator across a configuration suite.
//! * [`error`] — [`ModelError`], the typed error every public model API
//!   returns instead of panicking on out-of-domain inputs.
//! * [`verify`] — spec cross-validation against `sf-absint`'s probe
//!   execution of the kernel, so the model never reasons from drifted
//!   eq. (5)/(6) inputs.

pub mod accuracy;
pub mod blocking;
pub mod cache;
pub mod dse;
pub mod equations;
pub mod error;
pub mod feasibility;
pub mod predict;
pub mod verify;

pub use accuracy::{accuracy_suite, AccuracyCase, AccuracyStats};
pub use cache::{check_cached, clear_caches, predict_cached};
pub use dse::{explore, explore_jobs, Candidate, DseOptions};
pub use error::ModelError;
pub use feasibility::FeasibilityReport;
pub use predict::{predict, predict_sharded, Prediction, PredictionLevel};
pub use verify::verify_spec;
