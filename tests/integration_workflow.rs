//! Cross-crate integration: the full workflow (feasibility → DSE →
//! synthesize → simulate → validate) for all three applications.

use sf_core::prelude::*;
use sf_fpga::design::synthesize;
use sf_kernels::rtm;

fn wf() -> Workflow {
    Workflow::u280_vs_v100()
}

#[test]
fn poisson_full_workflow_all_modes() {
    let wf = wf();
    let spec = StencilSpec::poisson();

    // baseline
    let wl = Workload::D2 { nx: 64, ny: 32, batch: 1 };
    let solver = PoissonSolver::auto(&wf, &wl, 100).unwrap();
    let input = Batch2D::<f32>::random(64, 32, 1, 1, -1.0, 1.0);
    let (out, rep) = solver.run_validated(&input, 10);
    assert!(out.mesh(0).all_finite());
    assert!(rep.total_cycles > 0);

    // batched
    let wlb = Workload::D2 { nx: 64, ny: 32, batch: 6 };
    let solver_b = PoissonSolver::auto(&wf, &wlb, 100).unwrap();
    let batch = Batch2D::<f32>::random(64, 32, 6, 2, -1.0, 1.0);
    let (_, rep_b) = solver_b.run_validated(&batch, 10);
    assert!(matches!(rep_b.mode, ExecMode::Batched { b: 6 }));

    // tiled (explicit design on a wide mesh)
    let wlt = Workload::D2 { nx: 640, ny: 40, batch: 1 };
    let design = synthesize(
        &wf.device,
        &spec,
        8,
        10,
        ExecMode::Tiled1D { tile_m: 160 },
        MemKind::Ddr4,
        &wlt,
    )
    .unwrap();
    let solver_t = PoissonSolver::with_design(wf.device.clone(), design);
    let mesh = Batch2D::<f32>::random(640, 40, 1, 3, -1.0, 1.0);
    let (_, rep_t) = solver_t.run_validated(&mesh, 20);
    assert!(rep_t.ext_read_bytes > rep_t.ext_write_bytes, "halo redundancy must show");
}

#[test]
fn jacobi_full_workflow_all_modes() {
    let wf = wf();
    let spec = StencilSpec::jacobi();

    let wl = Workload::D3 { nx: 20, ny: 16, nz: 12, batch: 1 };
    let solver = JacobiSolver::auto(&wf, &wl, 50).unwrap();
    let input = Batch3D::<f32>::random(20, 16, 12, 1, 4, -1.0, 1.0);
    let (_, rep) = solver.run_validated(&input, 8);
    assert!(rep.freq_mhz > 200.0);

    // batched
    let wlb = Workload::D3 { nx: 12, ny: 12, nz: 10, batch: 5 };
    let solver_b = JacobiSolver::auto(&wf, &wlb, 50).unwrap();
    let batch = Batch3D::<f32>::random(12, 12, 10, 5, 5, -1.0, 1.0);
    let (_, _) = solver_b.run_validated(&batch, 6);

    // tiled
    let wlt = Workload::D3 { nx: 96, ny: 80, nz: 8, batch: 1 };
    let design = synthesize(
        &wf.device,
        &spec,
        8,
        4,
        ExecMode::Tiled2D { tile_m: 48, tile_n: 40 },
        MemKind::Hbm,
        &wlt,
    )
    .unwrap();
    let solver_t = JacobiSolver::with_design(wf.device.clone(), design, Jacobi3D::smoothing());
    let mesh = Batch3D::<f32>::random(96, 80, 8, 1, 6, -1.0, 1.0);
    let (_, _) = solver_t.run_validated(&mesh, 8);
}

#[test]
fn rtm_full_workflow() {
    let wf = wf();
    // design selection at the paper's scale must land on V=1, p=3
    let paper_wl = Workload::D3 { nx: 64, ny: 64, nz: 64, batch: 1 };
    let chosen = wf.best_design(&StencilSpec::rtm(), &paper_wl, 1800).unwrap();
    assert_eq!(chosen.design.v, 1, "RTM must run at V=1 (paper §V-C)");
    assert_eq!(chosen.design.p, 3, "RTM must unroll p=3 (paper §V-C)");

    // numeric validation of the fused pipeline on a reduced mesh with the
    // same (V=1, p=3) configuration
    let wl = Workload::D3 { nx: 16, ny: 14, nz: 12, batch: 1 };
    let design =
        synthesize(&wf.device, &StencilSpec::rtm(), 1, 3, ExecMode::Baseline, MemKind::Hbm, &wl)
            .unwrap();
    let solver = RtmSolver::with_design(wf.device.clone(), design, RtmParams::default());
    let (y, rho, mu) = rtm::demo_workload(16, 14, 12);
    let (out, rep) = solver.run_validated(&y, &rho, &mu, 9);
    assert!(out.all_finite());
    assert_eq!(rep.passes, 3);
}

#[test]
fn dse_feasibility_consistency() {
    // every DSE candidate must (a) fit the device, (b) respect the
    // dimensionality of its workload, (c) carry a positive prediction
    let wf = wf();
    for (spec, wl) in [
        (StencilSpec::poisson(), Workload::D2 { nx: 400, ny: 400, batch: 1 }),
        (StencilSpec::jacobi(), Workload::D3 { nx: 100, ny: 100, nz: 100, batch: 1 }),
        (StencilSpec::rtm(), Workload::D3 { nx: 32, ny: 32, nz: 32, batch: 1 }),
    ] {
        let cands = wf.explore(&spec, &wl, 1000).unwrap();
        assert!(!cands.is_empty(), "{}: no candidates", spec.app);
        for c in &cands {
            assert!(c.design.resources.fits(&wf.device));
            assert!(c.prediction.runtime_s > 0.0);
            assert!(c.design.freq_hz >= 100.0e6);
        }
    }
}

#[test]
fn reports_serialize_roundtrip() {
    // reports and designs are serde-serializable for the experiment harness
    let wf = wf();
    let wl = Workload::D2 { nx: 100, ny: 100, batch: 1 };
    let cmp = wf.compare(&StencilSpec::poisson(), &wl, 100).unwrap();
    let json = serde_json::to_string(&cmp.fpga).unwrap();
    let back: SimReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back, cmp.fpga);
}
