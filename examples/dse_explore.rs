//! Design-space exploration: how the predictive model narrows hundreds of
//! `(V, p, mode)` candidates to the handful worth synthesizing (§V-A: "our
//! model significantly narrows the design space, enabling us to reason about
//! and quickly obtain an optimum configuration").
//!
//! ```text
//! cargo run --release --example dse_explore
//! ```

use sf_core::prelude::*;

fn show(wf: &Workflow, spec: &StencilSpec, wl: &Workload, niter: u64) {
    let cands = wf.explore(spec, wl, niter).expect("valid exploration options");
    println!(
        "\n═══ {} on {:?} — {} feasible designs (of the swept space) ═══",
        spec.app,
        wl,
        cands.len()
    );
    println!(
        "{:<4} {:>4} {:>4} {:<26} {:>9} {:>12} {:>12} {:>8} {:>8}",
        "#", "V", "p", "mode", "MHz", "pred ms", "pred GB/s", "DSP%", "mem%"
    );
    for (i, c) in cands.iter().take(8).enumerate() {
        let d = &c.design;
        println!(
            "{:<4} {:>4} {:>4} {:<26} {:>9.0} {:>12.2} {:>12.0} {:>7.0}% {:>7.0}%",
            i + 1,
            d.v,
            d.p,
            format!("{:?}", d.mode),
            d.freq_mhz(),
            c.prediction.runtime_s * 1e3,
            c.prediction.bandwidth_gbs,
            d.resources.dsp_util(&wf.device) * 100.0,
            d.resources.mem_util(&wf.device) * 100.0,
        );
    }
    if cands.len() > 8 {
        println!("… and {} more", cands.len() - 8);
    }
}

fn main() {
    let wf = Workflow::u280_vs_v100();

    show(&wf, &StencilSpec::poisson(), &Workload::D2 { nx: 400, ny: 400, batch: 1 }, 60_000);
    show(&wf, &StencilSpec::poisson(), &Workload::D2 { nx: 200, ny: 100, batch: 1000 }, 60_000);
    show(
        &wf,
        &StencilSpec::jacobi(),
        &Workload::D3 { nx: 200, ny: 200, nz: 200, batch: 1 },
        29_000,
    );
    show(&wf, &StencilSpec::jacobi(), &Workload::D3 { nx: 600, ny: 600, nz: 600, batch: 1 }, 120);
    show(&wf, &StencilSpec::rtm(), &Workload::D3 { nx: 32, ny: 32, nz: 32, batch: 1 }, 1_800);

    // the feasibility wall: a mesh no baseline design can buffer
    let wl = Workload::D3 { nx: 2500, ny: 2500, nz: 100, batch: 1 };
    let feas = wf.feasibility(&StencilSpec::jacobi(), &wl).expect("valid workload");
    println!(
        "\n2500×2500×100 Jacobi: p_mem = {} → baseline infeasible (eq. 7); \
         every surviving candidate is spatially blocked.",
        feas.p_mem
    );
    show(&wf, &StencilSpec::jacobi(), &wl, 120);
}
