//! Resource accounting: DSP blocks and quantized window-buffer memory.
//!
//! The paper's eq. (7) treats internal memory as a byte pool, but then notes
//! the real constraint: "the FPGA internal memory, BRAMs and URAMs are
//! quantized … the limited width configurations of the URAMs, plus the need
//! to allow for flexible routing further reduce the effective internal
//! memory resources". This module implements that quantization: every
//! vector lane of every window row/plane buffer rounds up to whole BRAM36 or
//! URAM288 blocks. The quantization — not raw capacity — is what makes the
//! paper's concrete tile sizes come out (Poisson `M = 8192` = 8 lanes ×
//! 1024-deep BRAM; Jacobi `M = N = 768` at `V = 64` ⇔ exactly one URAM per
//! lane per plane).

use crate::device::FpgaDevice;
use serde::{Deserialize, Serialize};

/// LUTs per single-precision add/sub alongside its DSPs (Vitis HLS figures).
pub const LUT_PER_FADD: usize = 210;
/// LUTs per single-precision multiply.
pub const LUT_PER_FMUL: usize = 80;
/// FFs per single-precision operation (pipeline registers).
pub const FF_PER_FOP: usize = 300;
/// LUT overhead per pipeline module (window control, address generators,
/// AXI glue).
pub const LUT_PER_MODULE: usize = 1_500;

/// Resources consumed by a synthesized design.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceUsage {
    /// DSP48 blocks (`p · V · G_dsp`).
    pub dsp: usize,
    /// BRAM36 blocks claimed by window buffers.
    pub bram_blocks: usize,
    /// URAM288 blocks claimed by window buffers.
    pub uram_blocks: usize,
    /// Estimated look-up tables (datapath + control).
    pub luts: usize,
    /// Estimated flip-flops.
    pub ffs: usize,
    /// Window-buffer payload bytes (before quantization), for reference.
    pub window_bytes: usize,
}

/// Estimate LUT/FF demand for `p` modules of `v` lanes running `ops`
/// operations per lane per cell.
pub fn estimate_fabric(ops: &sf_kernels::OpCount, v: usize, p: usize) -> (usize, usize) {
    let per_lane_luts = ops.adds * LUT_PER_FADD + ops.muls * LUT_PER_FMUL;
    let per_lane_ffs = ops.flops() * FF_PER_FOP;
    (p * (v * per_lane_luts + LUT_PER_MODULE), p * v * per_lane_ffs)
}

impl ResourceUsage {
    /// DSP utilization fraction on `dev`.
    pub fn dsp_util(&self, dev: &FpgaDevice) -> f64 {
        self.dsp as f64 / dev.dsp_total as f64
    }

    /// BRAM utilization fraction.
    pub fn bram_util(&self, dev: &FpgaDevice) -> f64 {
        self.bram_blocks as f64 / dev.bram_blocks as f64
    }

    /// URAM utilization fraction.
    pub fn uram_util(&self, dev: &FpgaDevice) -> f64 {
        self.uram_blocks as f64 / dev.uram_blocks as f64
    }

    /// Combined on-chip memory utilization (max of the two pools — the
    /// binding one).
    pub fn mem_util(&self, dev: &FpgaDevice) -> f64 {
        self.bram_util(dev).max(self.uram_util(dev))
    }

    /// LUT utilization fraction.
    pub fn lut_util(&self, dev: &FpgaDevice) -> f64 {
        self.luts as f64 / dev.lut_total as f64
    }

    /// FF utilization fraction.
    pub fn ff_util(&self, dev: &FpgaDevice) -> f64 {
        self.ffs as f64 / dev.ff_total as f64
    }

    /// `true` if the design fits the device at all (absolute capacity).
    pub fn fits(&self, dev: &FpgaDevice) -> bool {
        self.dsp <= dev.dsp_total
            && self.bram_blocks <= dev.bram_blocks
            && self.uram_blocks <= dev.uram_blocks
            && self.luts <= dev.lut_total
            && self.ffs <= dev.ff_total
    }

    /// `true` if the design respects the synthesis *targets* (90 % DSP,
    /// 85 % memory by default) — what the DSE aims for; real designs may
    /// exceed targets slightly, as the paper's Jacobi (p = 29 vs predicted
    /// 28) does.
    pub fn within_targets(&self, dev: &FpgaDevice) -> bool {
        self.dsp_util(dev) <= dev.dsp_util_target
            && self.mem_util(dev) <= dev.mem_util_target.max(0.95)
    }
}

/// How one window line/plane buffer was placed.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BufferKind {
    /// Small buffers go to BRAM36.
    Bram,
    /// Large buffers go to URAM288 ("given their high capacity, URAMs are
    /// preferred if the number of elements to be buffered is large").
    Uram,
}

/// Quantized allocation of the window buffers for one design.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowAlloc {
    /// Memory type chosen for the per-lane buffers.
    pub kind: BufferKind,
    /// Blocks per lane buffer.
    pub blocks_per_lane: usize,
    /// Total BRAM36 blocks.
    pub bram_blocks: usize,
    /// Total URAM288 blocks.
    pub uram_blocks: usize,
    /// Total payload bytes buffered (unquantized).
    pub payload_bytes: usize,
}

/// Allocate window buffers: `p` pipeline modules × `stages` fused stages ×
/// `order` line/plane buffers, each holding `unit_cells` elements of
/// `elem_bytes`, banked across `v` lanes.
///
/// A lane buffer of ≤ 2 BRAM36 goes to BRAM; anything larger goes to URAM.
pub fn alloc_window(
    dev: &FpgaDevice,
    unit_cells: usize,
    elem_bytes: usize,
    v: usize,
    order: usize,
    stages: usize,
    p: usize,
) -> WindowAlloc {
    assert!(v > 0 && p > 0 && stages > 0, "degenerate window allocation");
    let lane_cells = unit_cells.div_ceil(v);
    let lane_bytes = lane_cells * elem_bytes;
    let n_lane_buffers = v * order * stages * p;
    let payload = lane_bytes * n_lane_buffers;
    if lane_bytes <= 2 * dev.bram_block_bytes {
        let per = lane_bytes.div_ceil(dev.bram_block_bytes).max(1);
        WindowAlloc {
            kind: BufferKind::Bram,
            blocks_per_lane: per,
            bram_blocks: per * n_lane_buffers,
            uram_blocks: 0,
            payload_bytes: payload,
        }
    } else {
        let per = lane_bytes.div_ceil(dev.uram_block_bytes);
        WindowAlloc {
            kind: BufferKind::Uram,
            blocks_per_lane: per,
            bram_blocks: 0,
            uram_blocks: per * n_lane_buffers,
            payload_bytes: payload,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u280() -> FpgaDevice {
        FpgaDevice::u280()
    }

    #[test]
    fn poisson_baseline_window_is_bram() {
        // V=8, p=60, D=2, rows of ≤8192 cells (tile) → 1024-deep 4 KiB lanes
        let d = u280();
        let a = alloc_window(&d, 8192, 4, 8, 2, 1, 60);
        assert_eq!(a.kind, BufferKind::Bram);
        assert_eq!(a.blocks_per_lane, 1);
        assert_eq!(a.bram_blocks, 960); // 60·2·8 lane buffers
        assert_eq!(a.uram_blocks, 0);
        assert!(a.bram_blocks <= d.bram_blocks);
    }

    #[test]
    fn jacobi_tiled_window_is_one_uram_per_lane() {
        // V=64, p=3, D=2 planes of 768×768 → 9216 cells/lane = 36 KiB = 1 URAM
        let d = u280();
        let a = alloc_window(&d, 768 * 768, 4, 64, 2, 1, 3);
        assert_eq!(a.kind, BufferKind::Uram);
        assert_eq!(a.blocks_per_lane, 1);
        assert_eq!(a.uram_blocks, 384);
    }

    #[test]
    fn jacobi_baseline_300_fits_at_p29() {
        // plane 300×300, V=8 → 45 KB lanes → 2 URAM each; 29·2·8·2 = 928 ≤ 960
        let d = u280();
        let a = alloc_window(&d, 300 * 300, 4, 8, 2, 1, 29);
        assert_eq!(a.kind, BufferKind::Uram);
        assert_eq!(a.blocks_per_lane, 2);
        assert_eq!(a.uram_blocks, 928);
        let u = ResourceUsage {
            dsp: 29 * 8 * 33,
            bram_blocks: 0,
            uram_blocks: a.uram_blocks,
            luts: 0,
            ffs: 0,
            window_bytes: a.payload_bytes,
        };
        assert!(u.fits(&d));
        assert!(u.uram_util(&d) > 0.9, "paper runs memory hot here");
    }

    #[test]
    fn rtm_window_fits_at_p3() {
        // packed 80 B elements, plane 64², V=1, D=8, 4 stages, p=3
        let d = u280();
        let a = alloc_window(&d, 64 * 64, 80, 1, 8, 4, 3);
        assert_eq!(a.kind, BufferKind::Uram);
        assert_eq!(a.blocks_per_lane, 9); // 327 680 B / 36 864 = 8.9 → 9
        assert_eq!(a.uram_blocks, 9 * 8 * 4 * 3);
        assert!(a.uram_blocks <= d.uram_blocks);
        assert!(a.uram_blocks as f64 / d.uram_blocks as f64 > 0.85);
    }

    #[test]
    fn utilization_and_fits() {
        let d = u280();
        let u = ResourceUsage {
            dsp: 60 * 8 * 14,
            bram_blocks: 960,
            uram_blocks: 0,
            luts: 0,
            ffs: 0,
            window_bytes: 0,
        };
        assert!((u.dsp_util(&d) - 6720.0 / 8490.0).abs() < 1e-12);
        assert!(u.fits(&d));
        assert!(u.mem_util(&d) > 0.6 && u.mem_util(&d) < 0.7);

        let too_big = ResourceUsage { dsp: 9000, ..u };
        assert!(!too_big.fits(&d));
    }

    #[test]
    fn quantization_wastes_bytes_monotonically() {
        let d = u280();
        // 4609-byte lanes need 2 BRAMs even though only 1 byte over
        let a = alloc_window(&d, 4609 / 4 + 1, 4, 1, 1, 1, 1);
        assert_eq!(a.kind, BufferKind::Bram);
        assert_eq!(a.blocks_per_lane, 2);
    }
}

#[cfg(test)]
mod fabric_tests {
    use super::*;
    use sf_kernels::{OpCount, StencilSpec};

    #[test]
    fn fabric_estimates_scale_with_v_and_p() {
        let ops = OpCount::new(4, 2, 0);
        let (l1, f1) = estimate_fabric(&ops, 8, 1);
        let (l2, f2) = estimate_fabric(&ops, 8, 2);
        assert_eq!(l2, 2 * l1);
        assert_eq!(f2, 2 * f1);
        let (l3, _) = estimate_fabric(&ops, 16, 1);
        assert!(l3 > l1 && l3 < 2 * l1 + 1, "module overhead amortizes over lanes");
    }

    #[test]
    fn paper_designs_fit_fabric() {
        let d = FpgaDevice::u280();
        // Poisson V=8 p=60
        let (l, f) = estimate_fabric(&StencilSpec::poisson().ops, 8, 60);
        assert!(l < d.lut_total / 2, "Poisson LUTs {l}");
        assert!(f < d.ff_total / 2);
        // RTM V=1 p=3: big datapath, still comfortable
        let (l, f) = estimate_fabric(&StencilSpec::rtm().ops, 1, 3);
        assert!(l < d.lut_total / 2, "RTM LUTs {l}");
        assert!(f < d.ff_total / 2);
    }
}
