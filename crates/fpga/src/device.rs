//! FPGA device descriptors.
//!
//! [`FpgaDevice::u280`] encodes the Xilinx Alveo U280 exactly as the paper's
//! Table I reports it (8490 DSP blocks, 6.6 MB BRAM / 34.5 MB URAM, 8 GB HBM
//! at 460 GB/s over 32 channels, 32 GB DDR4 at 38.4 GB/s over 2 banks,
//! 3 SLRs, Vivado's default 300 MHz target clock), plus the micro-
//! architectural constants the cycle model needs (AXI width, burst size,
//! request-issue gap, host enqueue latency) with their calibration rationale.

use serde::{Deserialize, Serialize};

/// One external/near-chip memory system (HBM stack or DDR4 bank set).
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MemorySpec {
    /// Total capacity in bytes.
    pub bytes: u64,
    /// Number of independent channels (AXI ports).
    pub channels: usize,
    /// Peak bandwidth of one channel, bytes/second.
    pub channel_bw: f64,
}

impl MemorySpec {
    /// Aggregate peak bandwidth in bytes/second.
    pub fn total_bw(&self) -> f64 {
        self.channel_bw * self.channels as f64
    }

    /// Usable bytes/cycle of one channel at kernel clock `f` — the min of the
    /// 512-bit AXI bus and what the physical channel can sustain.
    pub fn channel_bytes_per_cycle(&self, f_hz: f64, bus_bytes: usize) -> f64 {
        (self.channel_bw / f_hz).min(bus_bytes as f64)
    }
}

/// A complete FPGA accelerator card description.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FpgaDevice {
    /// Human-readable name.
    pub name: String,
    /// Total DSP48 blocks (paper Table I: 8490 usable).
    pub dsp_total: usize,
    /// BRAM36 blocks (1487 × 36 Kb = 6.6 MB).
    pub bram_blocks: usize,
    /// Bytes per BRAM36 block (4.5 KiB).
    pub bram_block_bytes: usize,
    /// URAM blocks (960 × 288 Kb = 34.5 MB).
    pub uram_blocks: usize,
    /// Bytes per URAM block (36 KiB).
    pub uram_block_bytes: usize,
    /// Look-up tables (U280: ≈ 1.30 M usable).
    pub lut_total: usize,
    /// Flip-flops (U280: ≈ 2.61 M usable).
    pub ff_total: usize,
    /// Super Logic Regions on the die.
    pub slr_count: usize,
    /// High Bandwidth Memory stacks.
    pub hbm: MemorySpec,
    /// DDR4 external memory.
    pub ddr4: MemorySpec,
    /// Default HLS target clock (Hz).
    pub default_clock_hz: f64,
    /// AXI data bus width in bytes (512 bits = 64 B).
    pub axi_bus_bytes: usize,
    /// Maximum AXI burst size in bytes.
    pub axi_burst_bytes: usize,
    /// Per-transaction latency in cycles ("about 14 clock cycles" on the
    /// U280, §IV-A) — what strided tile rows pay when requests cannot be
    /// fully overlapped.
    pub axi_latency_cycles: usize,
    /// Request-issue gap per burst/row in cycles when requests *are*
    /// pipelined. Calibrated ≈ 3 from the paper's measured bandwidth falloff
    /// on narrow meshes (Table IV baseline column; see DESIGN.md §3.1).
    pub axi_issue_gap_cycles: usize,
    /// Residual host kernel-enqueue latency in seconds per pass. XRT
    /// pipelines enqueues, so most of the ~9 µs raw enqueue cost overlaps
    /// with execution; what remains unoverlapped (≈ 1.5 µs) plus the
    /// compute-pipeline latency and per-row gaps reproduces the paper's
    /// measured baseline bandwidth falloff on small meshes (Table IV).
    pub host_call_latency_s: f64,
    /// DSP utilization target for design synthesis (paper: 90 %).
    pub dsp_util_target: f64,
    /// Internal-memory utilization target (paper: 80–90 %).
    pub mem_util_target: f64,
}

impl FpgaDevice {
    /// The Xilinx Alveo U280 as specified in the paper's Table I.
    pub fn u280() -> Self {
        FpgaDevice {
            name: "Xilinx Alveo U280".to_string(),
            dsp_total: 8490,
            bram_blocks: 1487,
            bram_block_bytes: 36 * 1024 / 8,
            uram_blocks: 960,
            uram_block_bytes: 288 * 1024 / 8,
            lut_total: 1_304_000,
            ff_total: 2_607_000,
            slr_count: 3,
            hbm: MemorySpec { bytes: 8 << 30, channels: 32, channel_bw: 460.0e9 / 32.0 },
            ddr4: MemorySpec { bytes: 32 << 30, channels: 2, channel_bw: 38.4e9 / 2.0 },
            default_clock_hz: 300.0e6,
            axi_bus_bytes: 64,
            axi_burst_bytes: 4096,
            axi_latency_cycles: 14,
            axi_issue_gap_cycles: 3,
            host_call_latency_s: 1.5e-6,
            dsp_util_target: 0.90,
            mem_util_target: 0.85,
        }
    }

    /// Total on-chip memory bytes (BRAM + URAM) — the paper's `FPGA_mem`.
    pub fn internal_mem_bytes(&self) -> usize {
        self.bram_blocks * self.bram_block_bytes + self.uram_blocks * self.uram_block_bytes
    }

    /// A hypothetical next-generation card with twice the U280's on-chip
    /// memory and DSPs, used to explore the paper's §V-C future-work RTM
    /// tiling ("we leave this to future work"). See
    /// `exec3d::rtm_tiling_future_work`: the paper's own `p = 4, M = 96`
    /// turns out structurally impossible for the fused pipeline (the halo is
    /// `p·stages·D/2 = 128 > 96`); `p = 1` fits the real U280 and `p = 2`
    /// fits this 2× device.
    pub fn hypothetical_2x() -> Self {
        let base = Self::u280();
        FpgaDevice {
            name: "Hypothetical 2× U280".to_string(),
            dsp_total: base.dsp_total * 2,
            bram_blocks: base.bram_blocks * 2,
            uram_blocks: base.uram_blocks * 2,
            slr_count: 4,
            ..base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u280_matches_paper_table1() {
        let d = FpgaDevice::u280();
        assert_eq!(d.dsp_total, 8490);
        assert_eq!(d.slr_count, 3);
        // 6.6 MB BRAM
        let bram_mb = (d.bram_blocks * d.bram_block_bytes) as f64 / 1e6;
        assert!((bram_mb - 6.6).abs() < 0.3, "BRAM = {bram_mb} MB");
        // 34.5 MB URAM
        let uram_mb = (d.uram_blocks * d.uram_block_bytes) as f64 / 1e6;
        assert!((uram_mb - 34.5).abs() < 1.0, "URAM = {uram_mb} MB");
        // 460 GB/s HBM, 38.4 GB/s DDR4
        assert!((d.hbm.total_bw() - 460.0e9).abs() < 1e9);
        assert!((d.ddr4.total_bw() - 38.4e9).abs() < 1e8);
        assert_eq!(d.hbm.channels, 32);
        assert_eq!(d.ddr4.channels, 2);
    }

    #[test]
    fn channel_bytes_per_cycle_capped_by_bus() {
        let d = FpgaDevice::u280();
        // HBM channel: 14.375 GB/s at 250 MHz = 57.5 B/cycle < 64 B bus
        let b = d.hbm.channel_bytes_per_cycle(250e6, d.axi_bus_bytes);
        assert!((b - 57.5).abs() < 0.1, "got {b}");
        // at very low clock the AXI bus is the cap
        let b2 = d.hbm.channel_bytes_per_cycle(100e6, d.axi_bus_bytes);
        assert_eq!(b2, 64.0);
    }

    #[test]
    fn internal_mem_is_about_41mb() {
        let d = FpgaDevice::u280();
        // 1487 × 4.5 KiB + 960 × 36 KiB = 42.2 MB (paper rounds to 41.1 MB)
        let mb = d.internal_mem_bytes() as f64 / 1e6;
        assert!((mb - 42.2).abs() < 1.5, "internal mem = {mb} MB");
    }
}
