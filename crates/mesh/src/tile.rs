//! Overlapped spatial-block (tile) geometry — §IV-A of the paper.
//!
//! Spatial blocking cuts a mesh too large for the FPGA's internal memory into
//! blocks that are streamed through the compute pipeline one at a time. A
//! stencil of order `D` unrolled `p` times needs `h = p·D/2` halo cells on
//! each side of a block, so blocks *overlap* and the overlapped cells are
//! recomputed redundantly ("Overlapping leads to redundant computation.
//! However this overhead can be acceptable…").
//!
//! [`TileGrid1D`] decomposes one dimension into tiles whose **valid regions
//! exactly partition** the extent while the **read regions** add the halo and
//! are aligned to the 512-bit AXI word ("we must maintain a 512 bit alignment
//! in read/write transactions, regardless of the order of the stencil").
//! [`TileGrid2D`] is the product decomposition used for 3D `M × N × l`
//! blocking.

use serde::{Deserialize, Serialize};

/// One tile along a single dimension.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tile1D {
    /// First cell the tile reads (global index, aligned).
    pub read_start: usize,
    /// Number of cells the tile reads.
    pub read_len: usize,
    /// First cell whose result is written back (global index).
    pub valid_start: usize,
    /// Number of cells written back.
    pub valid_len: usize,
}

impl Tile1D {
    /// End (exclusive) of the read region.
    #[inline]
    pub fn read_end(&self) -> usize {
        self.read_start + self.read_len
    }

    /// End (exclusive) of the valid region.
    #[inline]
    pub fn valid_end(&self) -> usize {
        self.valid_start + self.valid_len
    }

    /// Offset of the valid region within the read window (local index).
    #[inline]
    pub fn valid_offset(&self) -> usize {
        self.valid_start - self.read_start
    }
}

/// A 1D decomposition with halo overlap and alignment.
///
/// ```
/// use sf_mesh::TileGrid1D;
/// // 1000 cells in 256-wide tiles with a 10-cell halo, 16-cell alignment
/// let g = TileGrid1D::new(1000, 256, 10, 16);
/// // valid regions partition the extent exactly
/// let covered: usize = g.tiles().iter().map(|t| t.valid_len).sum();
/// assert_eq!(covered, 1000);
/// // overlapped reads exceed the extent — the redundancy tiling pays
/// assert!(g.total_read() > 1000);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileGrid1D {
    /// Extent of the decomposed dimension.
    pub extent: usize,
    /// Nominal block size `M` (read cells per tile before clamping).
    pub tile: usize,
    /// Halo per side, `h = p·D/2`.
    pub halo: usize,
    /// Alignment of read-region ends in cells (e.g. 16 for f32 on 512-bit AXI).
    pub align: usize,
    tiles: Vec<Tile1D>,
}

impl TileGrid1D {
    /// Decompose `extent` cells into tiles of nominal size `tile` with `halo`
    /// cells of overlap per side, read regions aligned to `align` cells.
    ///
    /// The valid step per tile is `tile − 2·halo`, which must be positive —
    /// the paper's feasibility condition `M > p·D`.
    ///
    /// # Panics
    /// Panics if `tile ≤ 2·halo`, if `align == 0`, or if `extent == 0`.
    pub fn new(extent: usize, tile: usize, halo: usize, align: usize) -> Self {
        assert!(extent > 0, "extent must be positive");
        assert!(align > 0, "alignment must be positive");
        assert!(tile > 2 * halo, "tile size {tile} must exceed twice the halo {halo} (M > pD)");
        let step = tile - 2 * halo;
        let mut tiles = Vec::new();
        let mut vstart = 0usize;
        while vstart < extent {
            let vlen = step.min(extent - vstart);
            let vend = vstart + vlen;
            // expand by halo, clamp to mesh
            let rstart = vstart.saturating_sub(halo);
            let rend = (vend + halo).min(extent);
            // align outward (growing the read window never hurts correctness)
            let rstart = crate::round_down(rstart, align);
            let rend = crate::round_up(rend, align).min(extent);
            tiles.push(Tile1D {
                read_start: rstart,
                read_len: rend - rstart,
                valid_start: vstart,
                valid_len: vlen,
            });
            vstart = vend;
        }
        TileGrid1D { extent, tile, halo, align, tiles }
    }

    /// The tiles, in ascending order.
    #[inline]
    pub fn tiles(&self) -> &[Tile1D] {
        &self.tiles
    }

    /// Number of tiles.
    #[inline]
    pub fn len(&self) -> usize {
        self.tiles.len()
    }

    /// `true` when there are no tiles (never, by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tiles.is_empty()
    }

    /// Total cells read across all tiles (≥ `extent`; the excess is the
    /// redundant halo traffic).
    pub fn total_read(&self) -> usize {
        self.tiles.iter().map(|t| t.read_len).sum()
    }

    /// Redundancy factor: total cells read ÷ extent (1.0 = no overlap).
    pub fn redundancy(&self) -> f64 {
        self.total_read() as f64 / self.extent as f64
    }

    /// The paper's per-block valid fraction `1 − pD/M` (eq. 10 factor) for
    /// the nominal interior tile.
    pub fn nominal_valid_ratio(&self) -> f64 {
        1.0 - (2 * self.halo) as f64 / self.tile as f64
    }
}

/// One tile of a 2D (x, y) product decomposition.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tile2D {
    /// Decomposition along the fastest dimension (`M`).
    pub x: Tile1D,
    /// Decomposition along the second dimension (`N`).
    pub y: Tile1D,
}

impl Tile2D {
    /// Cells read by this tile (per plane for 3D use).
    #[inline]
    pub fn read_cells(&self) -> usize {
        self.x.read_len * self.y.read_len
    }

    /// Cells written back by this tile (per plane).
    #[inline]
    pub fn valid_cells(&self) -> usize {
        self.x.valid_len * self.y.valid_len
    }
}

/// A 2D product decomposition — the paper's `M × N` blocks for 3D meshes
/// (tiles span the full `l` dimension).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileGrid2D {
    /// Grid along `x`.
    pub gx: TileGrid1D,
    /// Grid along `y`.
    pub gy: TileGrid1D,
}

impl TileGrid2D {
    /// Decompose an `nx × ny` domain into `tile_m × tile_n` blocks with the
    /// same halo on both axes. Only the `x` axis needs AXI alignment (it is
    /// the contiguous one); `y` tiles align to 1.
    pub fn new(
        nx: usize,
        ny: usize,
        tile_m: usize,
        tile_n: usize,
        halo: usize,
        align: usize,
    ) -> Self {
        TileGrid2D {
            gx: TileGrid1D::new(nx, tile_m, halo, align),
            gy: TileGrid1D::new(ny, tile_n, halo, 1),
        }
    }

    /// Iterate all tiles in row-major (y-outer) order.
    pub fn tiles(&self) -> impl Iterator<Item = Tile2D> + '_ {
        self.gy
            .tiles()
            .iter()
            .flat_map(move |&ty| self.gx.tiles().iter().map(move |&tx| Tile2D { x: tx, y: ty }))
    }

    /// Number of tiles.
    pub fn len(&self) -> usize {
        self.gx.len() * self.gy.len()
    }

    /// `true` when there are no tiles (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total cells read per plane across all tiles.
    pub fn total_read(&self) -> usize {
        self.tiles().map(|t| t.read_cells()).sum()
    }

    /// Redundancy factor per plane.
    pub fn redundancy(&self) -> f64 {
        self.total_read() as f64 / (self.gx.extent * self.gy.extent) as f64
    }

    /// The paper's eq. (8)/(10) valid fraction `(1 − pD/M)(1 − pD/N)`.
    pub fn nominal_valid_ratio(&self) -> f64 {
        self.gx.nominal_valid_ratio() * self.gy.nominal_valid_ratio()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_partition(g: &TileGrid1D) {
        // valid regions are contiguous, disjoint and cover [0, extent)
        let mut next = 0usize;
        for t in g.tiles() {
            assert_eq!(t.valid_start, next, "gap or overlap in valid regions");
            assert!(t.valid_len > 0);
            // read covers valid plus halo (clamped)
            assert!(t.read_start <= t.valid_start.saturating_sub(g.halo));
            assert!(t.read_end() >= (t.valid_end() + g.halo).min(g.extent));
            assert!(t.read_end() <= g.extent);
            // alignment (clamped at extent)
            assert_eq!(t.read_start % g.align, 0);
            assert!(t.read_end() % g.align == 0 || t.read_end() == g.extent);
            next = t.valid_end();
        }
        assert_eq!(next, g.extent, "valid regions must cover the extent");
    }

    #[test]
    fn single_tile_when_extent_small() {
        let g = TileGrid1D::new(100, 1024, 60, 16);
        assert_eq!(g.len(), 1);
        let t = g.tiles()[0];
        assert_eq!(t.read_start, 0);
        assert_eq!(t.read_len, 100);
        assert_eq!(t.valid_len, 100);
        check_partition(&g);
    }

    #[test]
    fn poisson_paper_tiling_15000_by_1024() {
        // Poisson tiled, Table IV: 15000^2 mesh, tile 1024, p=60, D=2 → halo 60
        let g = TileGrid1D::new(15000, 1024, 60, 16);
        check_partition(&g);
        // step = 1024 - 120 = 904 → ceil(15000/904) = 17 tiles
        assert_eq!(g.len(), 17);
        assert!(g.redundancy() > 1.0 && g.redundancy() < 1.2);
        assert!((g.nominal_valid_ratio() - (1.0 - 120.0 / 1024.0)).abs() < 1e-12);
    }

    #[test]
    fn interior_tiles_have_full_halo() {
        let g = TileGrid1D::new(5000, 512, 30, 16);
        check_partition(&g);
        let mid = g.tiles()[g.len() / 2];
        assert!(mid.valid_offset() >= 30);
        assert!(mid.read_end() - mid.valid_end() >= 30);
    }

    #[test]
    #[should_panic(expected = "must exceed twice the halo")]
    fn tile_smaller_than_halo_panics() {
        let _ = TileGrid1D::new(1000, 100, 50, 16);
    }

    #[test]
    fn alignment_grows_reads_only() {
        let g = TileGrid1D::new(1000, 256, 10, 16);
        check_partition(&g);
        for t in g.tiles() {
            assert!(t.read_len >= t.valid_len);
        }
    }

    #[test]
    fn grid2d_jacobi_paper_tiling() {
        // Jacobi tiled, Table V: 600^3 mesh, 640^2 tiles... use 256 here:
        // p=3, D=2 → halo 3.
        let g = TileGrid2D::new(600, 600, 256, 256, 3, 16);
        let n_valid: usize = g.tiles().map(|t| t.valid_cells()).sum();
        assert_eq!(n_valid, 600 * 600, "valid cells must tile the plane");
        assert!(g.redundancy() > 1.0);
        let vr = g.nominal_valid_ratio();
        assert!((vr - (1.0 - 6.0 / 256.0) * (1.0 - 6.0 / 256.0)).abs() < 1e-12);
    }

    #[test]
    fn grid2d_tile_count() {
        let g = TileGrid2D::new(100, 100, 64, 64, 2, 16);
        // step = 60 → 2 tiles per axis
        assert_eq!(g.gx.len(), 2);
        assert_eq!(g.gy.len(), 2);
        assert_eq!(g.len(), 4);
        assert_eq!(g.tiles().count(), 4);
    }
}
