//! Typed executor errors.
//!
//! The resilient execution paths ([`crate::resilient`]) never panic on a
//! datapath fault: a wedged pipeline becomes [`ExecError::Deadlock`] carrying
//! the watchdog's structured diagnosis, an exhausted AXI retry budget becomes
//! [`ExecError::AxiExhausted`], and configuration mismatches that the plain
//! executors assert on become [`ExecError::ShapeMismatch`].

use sf_faults::WatchdogTrip;

/// Error from a resilient executor run.
#[derive(Clone, Debug, PartialEq)]
pub enum ExecError {
    /// The pipeline made no forward progress within the watchdog budget
    /// (e.g. a dropped FIFO element starved a downstream stage).
    Deadlock(WatchdogTrip),
    /// An AXI burst failed more times than the retry policy allows.
    AxiExhausted {
        /// Index of the exhausted burst.
        burst: u64,
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// The input shape disagrees with the design's execution mode.
    ShapeMismatch {
        /// What disagreed.
        detail: String,
    },
    /// The requested combination is not supported by the resilient path.
    Unsupported {
        /// What is unsupported.
        detail: String,
    },
    /// A checkpoint operation failed (spill I/O, corrupted snapshot on
    /// restore).
    Checkpoint {
        /// What went wrong.
        detail: String,
    },
    /// Rollback recovery gave up: a checkpoint segment kept failing after
    /// the configured number of restore/replay attempts.
    RecoveryExhausted {
        /// Rollbacks attempted on the failing segment.
        rollbacks: u32,
        /// What kept going wrong.
        detail: String,
    },
}

impl core::fmt::Display for ExecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ExecError::Deadlock(trip) => write!(f, "pipeline deadlock: {trip}"),
            ExecError::AxiExhausted { burst, attempts } => {
                write!(f, "AXI burst {burst} failed {attempts} times; retry budget exhausted")
            }
            ExecError::ShapeMismatch { detail } => write!(f, "shape mismatch: {detail}"),
            ExecError::Unsupported { detail } => write!(f, "unsupported: {detail}"),
            ExecError::Checkpoint { detail } => write!(f, "checkpoint failure: {detail}"),
            ExecError::RecoveryExhausted { rollbacks, detail } => {
                write!(f, "recovery exhausted after {rollbacks} rollback(s): {detail}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

impl From<WatchdogTrip> for ExecError {
    fn from(t: WatchdogTrip) -> Self {
        ExecError::Deadlock(t)
    }
}
