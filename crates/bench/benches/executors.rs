//! Executor comparison: golden sequential reference vs Rayon parallel vs the
//! FPGA dataflow simulator on identical workloads — the three numeric paths
//! whose agreement the test suite asserts bit-exactly.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sf_fpga::design::{synthesize, ExecMode, MemKind, Workload};
use sf_fpga::{exec2d, exec3d, FpgaDevice};
use sf_kernels::{parallel, reference, Jacobi3D, Poisson2D, StencilSpec};
use sf_mesh::{Mesh2D, Mesh3D};

fn bench_poisson_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("poisson_executors");
    let m = Mesh2D::<f32>::random(256, 256, 3, -1.0, 1.0);
    let iters = 4usize;
    g.throughput(Throughput::Elements((m.len() * iters) as u64));
    g.bench_function("reference_seq", |b| b.iter(|| reference::run_2d(&Poisson2D, &m, iters)));
    g.bench_function("rayon_parallel", |b| b.iter(|| parallel::par_run_2d(&Poisson2D, &m, iters)));
    let d = FpgaDevice::u280();
    let wl = Workload::D2 { nx: 256, ny: 256, batch: 1 };
    let ds = synthesize(&d, &StencilSpec::poisson(), 8, 4, ExecMode::Baseline, MemKind::Hbm, &wl)
        .unwrap();
    g.bench_function("fpga_dataflow_sim", |b| {
        b.iter(|| exec2d::simulate_mesh_2d(&d, &ds, &[Poisson2D], &m, iters))
    });
    g.finish();
}

fn bench_jacobi_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("jacobi_executors");
    let m = Mesh3D::<f32>::random(48, 48, 48, 4, -1.0, 1.0);
    let k = Jacobi3D::smoothing();
    let iters = 3usize;
    g.throughput(Throughput::Elements((m.len() * iters) as u64));
    g.bench_function("reference_seq", |b| b.iter(|| reference::run_3d(&k, &m, iters)));
    g.bench_function("rayon_parallel", |b| b.iter(|| parallel::par_run_3d(&k, &m, iters)));
    let d = FpgaDevice::u280();
    let wl = Workload::D3 { nx: 48, ny: 48, nz: 48, batch: 1 };
    let ds = synthesize(&d, &StencilSpec::jacobi(), 8, 3, ExecMode::Baseline, MemKind::Hbm, &wl)
        .unwrap();
    g.bench_function("fpga_dataflow_sim", |b| {
        b.iter(|| exec3d::simulate_mesh_3d(&d, &ds, &[k], &m, iters))
    });
    g.finish();
}

fn bench_rtm_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("rtm_executors");
    let (y, rho, mu) = sf_kernels::rtm::demo_workload(24, 24, 24);
    let prm = sf_kernels::RtmParams::default();
    let iters = 2usize;
    g.throughput(Throughput::Elements((y.len() * iters) as u64));
    g.bench_function("reference_seq", |b| b.iter(|| reference::rtm_run(&y, &rho, &mu, prm, iters)));
    g.bench_function("rayon_parallel", |b| {
        b.iter(|| parallel::par_rtm_run(&y, &rho, &mu, prm, iters))
    });
    g.finish();
}

criterion_group!(benches, bench_poisson_paths, bench_jacobi_paths, bench_rtm_paths);
criterion_main!(benches);
