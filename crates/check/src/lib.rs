//! # sf-check — static design-rule checker
//!
//! A static analyzer for stencil accelerator designs: it takes a [`Design`]
//! (stencil spec + `V`, `p`, tile `M×N`, batching, memory binding) and
//! verifies it against a device **without running the simulator**. It
//! reconstructs the HLS dataflow graph (memory read → `p·stages` chained
//! compute stages → memory write, a FIFO on every edge) and runs the
//! paper's legality equations over it:
//!
//! | area | rules | what they catch |
//! |---|---|---|
//! | parameters | `SFC-P01/P02` | zero `V`/`p`, dimensionality mismatches |
//! | window buffers | `SFC-W01/W02` | stencil reach not covered; quantized BRAM/URAM over-subscription (eq. 7) |
//! | FIFOs | `SFC-F01/F02` | static deadlock (depth below one AXI burst — the static dual of the runtime watchdog) and slack shortfalls |
//! | iterative unroll | `SFC-R01` | loop-carried RAW hazards across the in-flight dependency window |
//! | tiling | `SFC-T01..T04` | halo/tile legality (eq. 8), throughput guideline (eq. 12), vector alignment |
//! | resources | `SFC-S01..S04` | DSP (eq. 6), fabric, per-SLR floorplan, SLR spanning |
//! | memory system | `SFC-B01/B02` | channel feasibility (eq. 4), external capacity |
//!
//! Every finding is a structured [`Diagnostic`] — rule id, severity,
//! location in the dataflow graph, fix hint — collected into a
//! [`CheckReport`]. With default buffer sizing, a check-clean design is
//! guaranteed to pass `sf_fpga::design::synthesize`; the error rules are a
//! strict superset of the synthesizer's rejections, which is what lets the
//! DSE use [`check`] as a pruning filter and the CLI/workflow run it as a
//! mandatory pre-flight.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
pub mod graph;
pub mod rules;

pub use diag::{CheckError, CheckReport, Diagnostic, RuleId, Severity};
pub use graph::{DataflowGraph, Edge, Node, NodeKind};
pub use rules::{check, Design};
