//! The unified error type for the end-to-end workflow.
//!
//! Every fallible step of the pipeline — model queries, design-space
//! exploration, synthesis, simulated execution — has its own typed error;
//! [`SfError`] is the umbrella the workflow-level APIs return so callers
//! (the CLI, the fault-campaign runner) handle one type and still see
//! exactly which layer failed.

use sf_check::CheckError;
use sf_fpga::design::SynthesisError;
use sf_fpga::ExecError;
use sf_model::ModelError;

use crate::workflow::WorkflowError;

/// Any failure along the stencil-to-FPGA workflow.
#[derive(Clone, Debug, PartialEq)]
pub enum SfError {
    /// The analytic model rejected its inputs (see [`ModelError`]).
    Model(ModelError),
    /// The workflow found no viable path (see [`WorkflowError`]).
    Workflow(WorkflowError),
    /// Synthesis rejected the configuration (see [`SynthesisError`]).
    Synthesis(SynthesisError),
    /// Simulated execution failed (see [`ExecError`]) — deadlock, exhausted
    /// AXI retries, or a shape mismatch.
    Exec(ExecError),
    /// The static design-rule pre-flight found error-severity violations
    /// (see [`CheckError`]); the full diagnostic report rides along.
    Check(CheckError),
}

impl core::fmt::Display for SfError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SfError::Model(e) => write!(f, "model: {e}"),
            SfError::Workflow(e) => write!(f, "workflow: {e}"),
            SfError::Synthesis(e) => write!(f, "synthesis: {e}"),
            SfError::Exec(e) => write!(f, "execution: {e}"),
            SfError::Check(e) => write!(f, "check: {e}"),
        }
    }
}

impl std::error::Error for SfError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SfError::Model(e) => Some(e),
            SfError::Workflow(e) => Some(e),
            SfError::Synthesis(e) => Some(e),
            SfError::Exec(e) => Some(e),
            SfError::Check(e) => Some(e),
        }
    }
}

impl From<ModelError> for SfError {
    fn from(e: ModelError) -> Self {
        SfError::Model(e)
    }
}

impl From<WorkflowError> for SfError {
    fn from(e: WorkflowError) -> Self {
        SfError::Workflow(e)
    }
}

impl From<SynthesisError> for SfError {
    fn from(e: SynthesisError) -> Self {
        SfError::Synthesis(e)
    }
}

impl From<ExecError> for SfError {
    fn from(e: ExecError) -> Self {
        SfError::Exec(e)
    }
}

impl From<CheckError> for SfError {
    fn from(e: CheckError) -> Self {
        SfError::Check(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failing_layer() {
        let e: SfError = ModelError::invalid("v", "must be >= 1").into();
        assert!(format!("{e}").starts_with("model:"));
        let e: SfError = WorkflowError::NoFeasibleDesign { app: "Poisson2D".into() }.into();
        assert!(format!("{e}").starts_with("workflow:"));
        let e: SfError = SynthesisError::Invalid("V and p must be positive".into()).into();
        assert!(format!("{e}").starts_with("synthesis:"));
    }

    #[test]
    fn source_chain_reaches_the_layer_error() {
        use std::error::Error;
        let e: SfError = ModelError::invalid("max_p", "must be >= 1").into();
        assert!(e.source().unwrap().to_string().contains("max_p"));
    }
}
