//! Jacobi-7pt-3D — the paper's second application (§V-B, eq. 18):
//!
//! ```text
//! U' = k1 U[i+1,j,k] + k2 U[i-1,j,k] + k3 U[i,j-1,k] + k4 U[i,j,k]
//!    + k5 U[i,j+1,k] + k6 U[i,j,k+1] + k7 U[i,j,k-1]
//! ```
//!
//! A 2nd-order (D = 2), 7-point star on scalar `f32` elements with seven
//! runtime coefficients. Op count 6 adds + 7 muls → `G_dsp = 33`, matching
//! the paper's Table II.

use crate::domain::{AbstractOp3D, AbstractValue};
use crate::op3d::StencilOp3D;
use crate::ops::OpCount;

/// The 7-point Jacobi iteration kernel of paper eq. (18).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Jacobi3D {
    /// Coefficients `k1..k7` in the paper's term order:
    /// `[x+1, x−1, y−1, center, y+1, z+1, z−1]`.
    pub k: [f32; 7],
}

impl Jacobi3D {
    /// Stencil order `D`.
    pub const ORDER: usize = 2;

    /// A diagonally-dominant contraction (coefficients sum to 1, center
    /// weighted 1/2) — the default benchmark workload; iterating converges.
    pub fn smoothing() -> Self {
        let s = 1.0 / 12.0;
        Jacobi3D { k: [s, s, s, 0.5, s, s, s] }
    }

    /// Construct with explicit coefficients.
    pub fn with_coefficients(k: [f32; 7]) -> Self {
        Jacobi3D { k }
    }

    /// Arithmetic ops for one mesh-point update (→ `G_dsp` = 33).
    pub const fn op_count() -> OpCount {
        OpCount::new(6, 7, 0)
    }
}

impl AbstractOp3D for Jacobi3D {
    /// The single copy of the update math: fixed left-to-right accumulation
    /// in the paper's term order, generic over the value domain.
    #[inline]
    fn update<V: AbstractValue, F: Fn(i32, i32, i32) -> V>(&self, at: &F) -> V {
        let k = |i: usize| V::constant(self.k[i]);
        (((((k(0) * at(1, 0, 0) + k(1) * at(-1, 0, 0)) + k(2) * at(0, -1, 0))
            + k(3) * at(0, 0, 0))
            + k(4) * at(0, 1, 0))
            + k(5) * at(0, 0, 1))
            + k(6) * at(0, 0, -1)
    }
}

impl StencilOp3D<f32> for Jacobi3D {
    fn radius(&self) -> usize {
        Self::ORDER / 2
    }

    #[inline]
    fn apply<F: Fn(i32, i32, i32) -> f32>(&self, at: F) -> f32 {
        self.update::<f32, _>(&at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoothing_constant_is_fixed_point() {
        let k = Jacobi3D::smoothing();
        let v = k.apply(|_, _, _| 2.0);
        assert!((v - 2.0).abs() < 1e-6);
    }

    #[test]
    fn coefficients_pick_out_terms() {
        // coefficient i = 1, rest 0 → update equals that neighbor
        let offsets =
            [(1, 0, 0), (-1, 0, 0), (0, -1, 0), (0, 0, 0), (0, 1, 0), (0, 0, 1), (0, 0, -1)];
        for (i, &(ox, oy, oz)) in offsets.iter().enumerate() {
            let mut k = [0.0f32; 7];
            k[i] = 1.0;
            let kern = Jacobi3D::with_coefficients(k);
            let v = kern.apply(|dx, dy, dz| if (dx, dy, dz) == (ox, oy, oz) { 42.0 } else { 1.0 });
            assert_eq!(v, 42.0, "coefficient {i} should select offset {:?}", (ox, oy, oz));
        }
    }

    #[test]
    fn radius_and_ops() {
        assert_eq!(Jacobi3D::smoothing().radius(), 1);
        assert_eq!(Jacobi3D::op_count().dsp(), 33);
    }

    #[test]
    fn only_star_points_accessed() {
        let k = Jacobi3D::smoothing();
        let _ = k.apply(|dx, dy, dz| {
            let nonzero = (dx != 0) as u32 + (dy != 0) as u32 + (dz != 0) as u32;
            assert!(nonzero <= 1, "non-star access ({dx},{dy},{dz})");
            1.0
        });
    }
}
