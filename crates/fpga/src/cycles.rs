//! The closed-form cycle/traffic model of the streaming executors.
//!
//! This is the simulator's ground truth for *time*: the streaming executors
//! process exactly the row/plane schedule priced here, so the numbers below
//! are the cycle counts a waveform of the dataflow design would show. It
//! implements the paper's eq. (2)/(3) structure plus the measured overheads:
//!
//! * per-row issue gap (`axi_issue_gap_cycles`, ≈ 3),
//! * pipeline fill of `p · stages · D/2` rows/planes per pass,
//! * compute/memory max per row ([`crate::axi::row_cycles`]),
//! * compute-pipeline latency plus residual host enqueue latency per pass,
//! * per-tile control-loop turnaround for blocked execution.
//!
//! The *predictive* model in `sf-model` is the paper's idealized equations;
//! comparing it against this module is the reproduction of the paper's
//! "±15 %" accuracy claim.

use crate::axi;
use crate::design::{ExecMode, MemKind, StencilDesign, Workload};
use crate::device::{FpgaDevice, MemorySpec};
use serde::{Deserialize, Serialize};
use sf_mesh::TileGrid1D;

/// Timing and traffic for a full solve (`niter` iterations of a workload on
/// a design).
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CyclePlan {
    /// Kernel passes (each pass advances `p` iterations).
    pub passes: u64,
    /// Cycles per pass (streaming + fill + pipeline latency).
    pub cycles_per_pass: u64,
    /// Total kernel cycles.
    pub total_cycles: u64,
    /// Host kernel enqueues.
    pub host_calls: u64,
    /// Wall-clock runtime in seconds (cycles/f + host latency).
    pub runtime_s: f64,
    /// External bytes read from DDR4/HBM over the whole solve.
    pub ext_read_bytes: u64,
    /// External bytes written.
    pub ext_write_bytes: u64,
    /// Logical bytes (the paper's bandwidth-accounting convention:
    /// mesh data accessed by the stencil loop, all iterations).
    pub logical_bytes: u64,
    /// `niter × total mesh cells` — cell updates delivered.
    pub cell_iters: u64,
}

impl CyclePlan {
    /// The paper's reported bandwidth: logical bytes / runtime, GB/s.
    /// Degenerate plans (a zero or non-finite runtime, e.g. `niter = 0`)
    /// report 0.0 rather than leaking NaN/inf into metrics JSON.
    pub fn bandwidth_gbs(&self) -> f64 {
        if !self.runtime_s.is_finite() || self.runtime_s <= 0.0 {
            return 0.0;
        }
        self.logical_bytes as f64 / self.runtime_s / 1.0e9
    }

    /// Delivered compute throughput in cell updates per second; 0.0 for
    /// degenerate zero-runtime plans (see [`CyclePlan::bandwidth_gbs`]).
    pub fn cells_per_sec(&self) -> f64 {
        if !self.runtime_s.is_finite() || self.runtime_s <= 0.0 {
            return 0.0;
        }
        self.cell_iters as f64 / self.runtime_s
    }
}

fn mem_spec(dev: &FpgaDevice, mem: MemKind) -> &MemorySpec {
    match mem {
        MemKind::Hbm => &dev.hbm,
        MemKind::Ddr4 => &dev.ddr4,
    }
}

/// Fill rows/planes per pass: each of the `p · stages` chained stages delays
/// the stream by `⌈D/2⌉` rows (2D) or planes (3D) — the `p·D/2` term of
/// eqs. (2)/(3) generalized to fused multi-stage pipelines. The division is
/// a ceiling *per chained stage*: an odd-order stencil still holds back a
/// whole extra row before its window is primed, so flooring the product
/// (`p·stages·D/2`) would under-price fill latency for odd `D`.
pub fn fill_units(design: &StencilDesign) -> u64 {
    (design.p * design.spec.stages * design.spec.order.div_ceil(2)) as u64
}

/// Cycles for one streamed row of the design: the max of compute issue and
/// AXI read/write service for `cells` lanes-worth of elements, plus the
/// per-row issue gap. Exposed for the multi-device planner (`sf-multi`),
/// which prices per-shard slabs with the same per-row cost.
pub fn design_row_cycles(
    dev: &FpgaDevice,
    design: &StencilDesign,
    cells: usize,
    write_cells: usize,
) -> u64 {
    axi::row_cycles(
        dev,
        mem_spec(dev, design.mem),
        design.freq_hz,
        design.v,
        cells,
        cells * design.spec.ext_read_bytes,
        write_cells * design.spec.ext_write_bytes,
        design.read_channels,
        design.write_channels,
    )
}

/// Plan a full solve.
///
/// # Panics
/// Panics if the design's mode/workload dimensionality disagree (synthesis
/// prevents constructing such designs).
pub fn plan(dev: &FpgaDevice, design: &StencilDesign, wl: &Workload, niter: u64) -> CyclePlan {
    let p = design.p as u64;
    let passes = niter.div_ceil(p).max(1);
    let spec = &design.spec;
    let fill = fill_units(design);

    let (cycles_per_pass, read_per_pass, write_per_pass) = match (*wl, design.mode) {
        // ---- whole-mesh streaming (baseline / batched), 2D ----
        (Workload::D2 { nx, ny, batch }, ExecMode::Baseline | ExecMode::Batched { .. }) => {
            let rows = (batch * ny) as u64 + fill;
            let rc = design_row_cycles(dev, design, nx, nx);
            let cells = (batch * ny * nx) as u64;
            (
                rows * rc + design.pipeline_latency_cycles,
                cells * spec.ext_read_bytes as u64,
                cells * spec.ext_write_bytes as u64,
            )
        }
        // ---- whole-mesh streaming, 3D ----
        (Workload::D3 { nx, ny, nz, batch }, ExecMode::Baseline | ExecMode::Batched { .. }) => {
            let planes = (batch * nz) as u64 + fill;
            let rows = planes * ny as u64;
            let rc = design_row_cycles(dev, design, nx, nx);
            let cells = (batch * nz * ny * nx) as u64;
            (
                rows * rc + design.pipeline_latency_cycles,
                cells * spec.ext_read_bytes as u64,
                cells * spec.ext_write_bytes as u64,
            )
        }
        // ---- 2D spatial blocking: tiles along x, full y extent ----
        (Workload::D2 { nx, ny, .. }, ExecMode::Tiled1D { tile_m }) => {
            let halo = design.p * spec.halo_order() / 2;
            let align = (dev.axi_bus_bytes / spec.elem_bytes).max(1);
            let grid = TileGrid1D::new(nx, tile_m, halo, align);
            let mut cycles = 0u64;
            let mut read = 0u64;
            let mut write = 0u64;
            for t in grid.tiles() {
                let rows = ny as u64 + fill;
                let rc = design_row_cycles(dev, design, t.read_len, t.valid_len);
                cycles += rows * rc + dev.axi_latency_cycles as u64;
                read += (t.read_len * ny) as u64 * spec.ext_read_bytes as u64;
                write += (t.valid_len * ny) as u64 * spec.ext_write_bytes as u64;
            }
            (cycles + design.pipeline_latency_cycles, read, write)
        }
        // ---- 3D spatial blocking: M × N tiles, full z extent ----
        (Workload::D3 { nx, ny, nz, .. }, ExecMode::Tiled2D { tile_m, tile_n }) => {
            let halo = design.p * spec.halo_order() / 2;
            let align = (dev.axi_bus_bytes / spec.elem_bytes).max(1);
            let gx = TileGrid1D::new(nx, tile_m, halo, align);
            let gy = TileGrid1D::new(ny, tile_n, halo, 1);
            let mut cycles = 0u64;
            let mut read = 0u64;
            let mut write = 0u64;
            for ty in gy.tiles() {
                for tx in gx.tiles() {
                    let planes = nz as u64 + fill;
                    let rows = planes * ty.read_len as u64;
                    let rc = design_row_cycles(dev, design, tx.read_len, tx.valid_len);
                    cycles += rows * rc + dev.axi_latency_cycles as u64;
                    read += (tx.read_len * ty.read_len * nz) as u64 * spec.ext_read_bytes as u64;
                    write +=
                        (tx.valid_len * ty.valid_len * nz) as u64 * spec.ext_write_bytes as u64;
                }
            }
            (cycles + design.pipeline_latency_cycles, read, write)
        }
        (Workload::D2 { .. }, ExecMode::Tiled2D { .. })
        | (Workload::D3 { .. }, ExecMode::Tiled1D { .. }) => {
            unreachable!("synthesis rejects mismatched mode/workload dims")
        }
    };

    let total_cycles = passes * cycles_per_pass;
    let host_calls = passes;
    let runtime_s =
        total_cycles as f64 / design.freq_hz + host_calls as f64 * dev.host_call_latency_s;
    let cell_iters = niter * wl.total_cells();
    CyclePlan {
        passes,
        cycles_per_pass,
        total_cycles,
        host_calls,
        runtime_s,
        ext_read_bytes: passes * read_per_pass,
        ext_write_bytes: passes * write_per_pass,
        logical_bytes: cell_iters * spec.logical_rw_bytes as u64,
        cell_iters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::{synthesize, MemKind};
    use sf_kernels::StencilSpec;

    fn dev() -> FpgaDevice {
        FpgaDevice::u280()
    }

    fn poisson_design(wl: &Workload, mode: ExecMode, mem: MemKind) -> StencilDesign {
        synthesize(&dev(), &StencilSpec::poisson(), 8, 60, mode, mem, wl).unwrap()
    }

    #[test]
    fn poisson_baseline_structure_matches_eq2() {
        // paper eq. (2): Clks = niter/p × (ceil(m/V) × (n + p·D/2))
        let d = dev();
        let wl = Workload::D2 { nx: 200, ny: 100, batch: 1 };
        let ds = poisson_design(&wl, ExecMode::Baseline, MemKind::Hbm);
        let pl = plan(&d, &ds, &wl, 60_000);
        assert_eq!(pl.passes, 1000);
        // rows per pass: 100 + 60·1 = 160; row = 25 compute + 3 gap = 28
        let expect_rows = 160u64;
        let expect = expect_rows * 28 + ds.pipeline_latency_cycles;
        assert_eq!(pl.cycles_per_pass, expect);
        assert_eq!(pl.host_calls, 1000);
        // the idealized eq-2 count (no gaps) is a lower bound
        let eq2 = 1000u64 * (200u64.div_ceil(8) * 160);
        assert!(pl.total_cycles > eq2);
        assert!(pl.total_cycles < eq2 * 2);
    }

    #[test]
    fn poisson_baseline_bandwidth_near_paper_table4() {
        // paper Table IV baseline: 200×100 → 384 GB/s, 400×400 → 735 GB/s
        let d = dev();
        for (nx, ny, paper_bw) in [(200usize, 100usize, 384.0), (400, 400, 735.0)] {
            let wl = Workload::D2 { nx, ny, batch: 1 };
            let ds = poisson_design(&wl, ExecMode::Baseline, MemKind::Hbm);
            let pl = plan(&d, &ds, &wl, 60_000);
            let bw = pl.bandwidth_gbs();
            let ratio = bw / paper_bw;
            assert!(
                (0.7..1.4).contains(&ratio),
                "{nx}×{ny}: modeled {bw:.0} GB/s vs paper {paper_bw} GB/s"
            );
        }
    }

    #[test]
    fn batching_amortizes_fill_and_call_overheads() {
        let d = dev();
        let solo = Workload::D2 { nx: 200, ny: 100, batch: 1 };
        let ds1 = poisson_design(&solo, ExecMode::Baseline, MemKind::Hbm);
        let p1 = plan(&d, &ds1, &solo, 60_000);

        let batched = Workload::D2 { nx: 200, ny: 100, batch: 1000 };
        let ds2 = poisson_design(&batched, ExecMode::Batched { b: 1000 }, MemKind::Hbm);
        let p2 = plan(&d, &ds2, &batched, 60_000);

        // per-mesh time must improve substantially (paper: 384 → 867 GB/s)
        let per_mesh_1 = p1.runtime_s;
        let per_mesh_2 = p2.runtime_s / 1000.0;
        assert!(
            per_mesh_2 < per_mesh_1 * 0.75,
            "batching must speed up per-mesh solves: {per_mesh_1} vs {per_mesh_2}"
        );
        assert!(p2.bandwidth_gbs() > p1.bandwidth_gbs() * 1.5);
    }

    #[test]
    fn jacobi_baseline_bandwidth_near_paper_table5() {
        // paper Table V baseline: 100³ → 301, 300³ → 403 GB/s
        let d = dev();
        for (n, paper_bw) in [(100usize, 301.0), (300, 403.0)] {
            let wl = Workload::D3 { nx: n, ny: n, nz: n, batch: 1 };
            let ds = synthesize(
                &d,
                &StencilSpec::jacobi(),
                8,
                29,
                ExecMode::Baseline,
                MemKind::Hbm,
                &wl,
            )
            .unwrap();
            let pl = plan(&d, &ds, &wl, 29_000);
            let ratio = pl.bandwidth_gbs() / paper_bw;
            assert!(
                (0.7..1.4).contains(&ratio),
                "{n}³: modeled {:.0} vs paper {paper_bw}",
                pl.bandwidth_gbs()
            );
        }
    }

    #[test]
    fn tiled_2d_counts_redundant_halo_traffic() {
        let d = dev();
        let wl = Workload::D2 { nx: 15000, ny: 15000, batch: 1 };
        let ds = synthesize(
            &d,
            &StencilSpec::poisson(),
            8,
            60,
            ExecMode::Tiled1D { tile_m: 1024 },
            MemKind::Ddr4,
            &wl,
        )
        .unwrap();
        let pl = plan(&d, &ds, &wl, 120);
        // reads exceed writes because of overlapped halos
        assert!(pl.ext_read_bytes > pl.ext_write_bytes);
        // writes cover exactly the mesh each pass
        assert_eq!(pl.ext_write_bytes, pl.passes * 15000 * 15000 * 4);
    }

    #[test]
    fn tiled_bandwidth_improves_with_tile_size() {
        // paper Table IV: 15000², tiles 1024 → 805, 4096 → 892, 8000 → 905
        let d = dev();
        let wl = Workload::D2 { nx: 15000, ny: 15000, batch: 1 };
        let mut last = 0.0;
        for tile in [1024usize, 4096, 8000] {
            let ds = synthesize(
                &d,
                &StencilSpec::poisson(),
                8,
                60,
                ExecMode::Tiled1D { tile_m: tile },
                MemKind::Ddr4,
                &wl,
            )
            .unwrap();
            let pl = plan(&d, &ds, &wl, 120);
            let bw = pl.bandwidth_gbs();
            assert!(bw > last, "bandwidth must grow with tile size: {bw} after {last}");
            last = bw;
        }
        assert!(last > 700.0 && last < 1100.0, "largest tile ≈ paper's 905 GB/s, got {last}");
    }

    #[test]
    fn jacobi_tiled_strided_penalty_shows() {
        // paper Table V: 600³ tiled 640² → 292 GB/s: far below the batched
        // 400+ GB/s because of short strided runs
        let d = dev();
        let wl = Workload::D3 { nx: 600, ny: 600, nz: 600, batch: 1 };
        let ds = synthesize(
            &d,
            &StencilSpec::jacobi(),
            64,
            3,
            ExecMode::Tiled2D { tile_m: 640, tile_n: 640 },
            MemKind::Hbm,
            &wl,
        )
        .unwrap();
        let pl = plan(&d, &ds, &wl, 120);
        let bw = pl.bandwidth_gbs();
        assert!((150.0..400.0).contains(&bw), "modeled {bw} vs paper 292 GB/s");
    }

    #[test]
    fn rtm_batching_beats_baseline_per_mesh() {
        let d = dev();
        let spec = StencilSpec::rtm();
        let solo = Workload::D3 { nx: 32, ny: 32, nz: 32, batch: 1 };
        let ds1 = synthesize(&d, &spec, 1, 3, ExecMode::Baseline, MemKind::Hbm, &solo).unwrap();
        let p1 = plan(&d, &ds1, &solo, 1800);

        let batch = Workload::D3 { nx: 32, ny: 32, nz: 32, batch: 40 };
        let ds2 =
            synthesize(&d, &spec, 1, 3, ExecMode::Batched { b: 40 }, MemKind::Hbm, &batch).unwrap();
        let p2 = plan(&d, &ds2, &batch, 180);

        // throughput in cell-iterations/s must rise substantially with batching
        assert!(
            p2.cells_per_sec() > p1.cells_per_sec() * 1.5,
            "RTM batching: {:.2e} vs baseline {:.2e} cells/s",
            p2.cells_per_sec(),
            p1.cells_per_sec()
        );
    }

    #[test]
    fn zero_runtime_plan_reports_zero_throughput() {
        // a degenerate plan (runtime_s = 0, as a niter=0 schedule could
        // produce) must not leak NaN/inf into derived metrics
        let pl = CyclePlan {
            passes: 0,
            cycles_per_pass: 0,
            total_cycles: 0,
            host_calls: 0,
            runtime_s: 0.0,
            ext_read_bytes: 0,
            ext_write_bytes: 0,
            logical_bytes: 1_000_000,
            cell_iters: 1_000_000,
        };
        assert_eq!(pl.bandwidth_gbs(), 0.0);
        assert_eq!(pl.cells_per_sec(), 0.0);
        assert!(pl.bandwidth_gbs().is_finite());
        assert!(pl.cells_per_sec().is_finite());
        // non-finite runtimes degrade the same way
        let nan = CyclePlan { runtime_s: f64::NAN, ..pl };
        assert_eq!(nan.bandwidth_gbs(), 0.0);
        assert_eq!(nan.cells_per_sec(), 0.0);
    }

    #[test]
    fn odd_order_fill_rounds_up_per_stage() {
        // an order-3 stencil holds back ⌈3/2⌉ = 2 rows per chained stage;
        // the old floored product p·stages·D/2 under-priced this
        let d = dev();
        let wl = Workload::D2 { nx: 128, ny: 64, batch: 1 };
        let mut spec = StencilSpec::poisson();
        spec.order = 3;
        let ds = synthesize(&d, &spec, 8, 5, ExecMode::Baseline, MemKind::Hbm, &wl).unwrap();
        assert_eq!(fill_units(&ds), 10); // p=5 · stages=1 · ⌈3/2⌉=2
                                         // even orders are unchanged from the paper's p·stages·D/2 term
        let ds_even =
            synthesize(&d, &StencilSpec::poisson(), 8, 60, ExecMode::Baseline, MemKind::Hbm, &wl)
                .unwrap();
        assert_eq!(fill_units(&ds_even), 60);
    }

    #[test]
    fn niter_not_multiple_of_p_rounds_up_passes() {
        let d = dev();
        let wl = Workload::D2 { nx: 128, ny: 64, batch: 1 };
        let ds = poisson_design(&wl, ExecMode::Baseline, MemKind::Hbm);
        let pl = plan(&d, &ds, &wl, 61); // p=60 → 2 passes
        assert_eq!(pl.passes, 2);
    }
}
