//! Parallel batched execution: the paper's eq. 15 batch of `B` independent
//! meshes, fanned across worker threads.
//!
//! The single-stream executors ([`crate::exec2d::simulate_2d`],
//! [`crate::exec3d::simulate_3d`]) stream a `Batched{b}` workload as one
//! stacked mesh; per-mesh boundary handling inside the window chain makes
//! each batch member's result bit-identical to solving it alone (the
//! `batched_bit_exact_vs_independent_solves` invariant). This module
//! exploits exactly that independence: each mesh becomes one work item for
//! [`sf_par::par_map`], carrying a private [`Recorder`] shard, and shards
//! are merged back in mesh order. The consequences:
//!
//! * **Numerics** — bit-identical to the single-stream executors, for any
//!   worker count.
//! * **Timing** — the [`SimReport`] comes from the same closed-form cycle
//!   plan over the *full batched workload* (eq. 2–15 don't care how the
//!   simulation was scheduled on host threads), so it is byte-identical to
//!   the serial report.
//! * **Traces** — each mesh records under a `mesh{i}/window/` track prefix
//!   with its cycle stamps offset to the mesh's position in the batched
//!   stream; the deterministic merge makes the exported Chrome trace and
//!   flat-metrics JSON byte-identical for every `jobs` value.

use crate::cycles;
use crate::design::{ExecMode, StencilDesign, Workload};
use crate::device::FpgaDevice;
use crate::power;
use crate::profile;
use crate::report::SimReport;
use crate::window::{
    run_chain_2d_engine_traced, run_chain_3d_engine_traced, Engine2D, Engine3D, ScalarEngine,
};
use sf_kernels::{StencilOp2D, StencilOp3D};
use sf_mesh::{Batch2D, Batch3D, Element, Mesh2D, Mesh3D};
use sf_telemetry::Recorder;

/// Check a batch executor's design/input agreement (2D and 3D share this).
fn check_batch_mode(design: &StencilDesign, b: usize) {
    assert!(
        matches!(design.mode, ExecMode::Baseline | ExecMode::Batched { .. }),
        "batch executor needs a Baseline or Batched design"
    );
    match design.mode {
        ExecMode::Batched { b: db } => assert_eq!(b, db, "batch size mismatch"),
        _ => assert_eq!(b, 1, "baseline design runs one mesh"),
    }
}

/// Run one mesh's full iteration schedule through the 2D window chain.
///
/// Mirrors the pass loop of [`crate::exec2d::simulate_2d_traced`] for one
/// batch member: `ceil(niter / p)` passes, each chaining `p_eff × stages`
/// processors, window events traced on the first pass only.
#[allow(clippy::too_many_arguments)]
fn run_mesh_passes_2d<T: Element, K: Clone, E: Engine2D<T, K>>(
    engine: &E,
    design: &StencilDesign,
    stages_per_iter: &[K],
    mesh: &Mesh2D<T>,
    niter: usize,
    row_cycles: u64,
    rec: &mut Recorder,
    track_prefix: &str,
    base_cycle: u64,
) -> Mesh2D<T> {
    let (nx, ny) = (mesh.nx(), mesh.ny());
    let mut cur = mesh.clone();
    let mut remaining = niter;
    let mut first_pass = true;
    let mut off = Recorder::disabled();
    while remaining > 0 {
        let p_eff = design.p.min(remaining);
        let chain: Vec<K> = (0..p_eff).flat_map(|_| stages_per_iter.iter().cloned()).collect();
        let pass_rec: &mut Recorder = if first_pass { &mut *rec } else { &mut off };
        let rows = cur.as_slice().chunks(nx).map(|r| r.to_vec());
        let out_rows = run_chain_2d_engine_traced(
            engine,
            &chain,
            nx,
            ny,
            ny,
            rows,
            pass_rec,
            track_prefix,
            base_cycle,
            row_cycles,
        );
        let mut out = Mesh2D::<T>::zeros(nx, ny);
        for (y, row) in out_rows.into_iter().enumerate() {
            out.as_mut_slice()[y * nx..(y + 1) * nx].copy_from_slice(&row);
        }
        cur = out;
        remaining -= p_eff;
        first_pass = false;
    }
    cur
}

/// 3D twin of [`run_mesh_passes_2d`]: streams planes instead of rows.
#[allow(clippy::too_many_arguments)]
fn run_mesh_passes_3d<T: Element, K: Clone, E: Engine3D<T, K>>(
    engine: &E,
    design: &StencilDesign,
    stages_per_iter: &[K],
    mesh: &Mesh3D<T>,
    niter: usize,
    plane_cycles: u64,
    rec: &mut Recorder,
    track_prefix: &str,
    base_cycle: u64,
) -> Mesh3D<T> {
    let (nx, ny, nz) = (mesh.nx(), mesh.ny(), mesh.nz());
    let plane = nx * ny;
    let mut cur = mesh.clone();
    let mut remaining = niter;
    let mut first_pass = true;
    let mut off = Recorder::disabled();
    while remaining > 0 {
        let p_eff = design.p.min(remaining);
        let chain: Vec<K> = (0..p_eff).flat_map(|_| stages_per_iter.iter().cloned()).collect();
        let pass_rec: &mut Recorder = if first_pass { &mut *rec } else { &mut off };
        let planes = cur.as_slice().chunks(plane).map(|p| p.to_vec());
        let out_planes = run_chain_3d_engine_traced(
            engine,
            &chain,
            nx,
            ny,
            nz,
            nz,
            planes,
            pass_rec,
            track_prefix,
            base_cycle,
            plane_cycles,
        );
        let mut out = Mesh3D::<T>::zeros(nx, ny, nz);
        for (z, pl) in out_planes.into_iter().enumerate() {
            out.as_mut_slice()[z * plane..(z + 1) * plane].copy_from_slice(&pl);
        }
        cur = out;
        remaining -= p_eff;
        first_pass = false;
    }
    cur
}

/// Execute a (batch of) 2D mesh(es) with per-mesh fan-out across `jobs`
/// worker threads.
///
/// Output, [`SimReport`] and every byte recorded into `rec` are identical
/// for all `jobs` values (see the module docs for why); `jobs = 1` *is*
/// the serial reference path. The numeric result is bit-identical to
/// [`crate::exec2d::simulate_2d`] on the same inputs.
///
/// # Panics
/// Panics on a design/input mismatch (wrong batch size, tiled mode) or
/// `niter == 0`, like the single-stream executors.
pub fn simulate_batch_2d_parallel<T: Element, K: StencilOp2D<T> + Clone>(
    dev: &FpgaDevice,
    design: &StencilDesign,
    stages_per_iter: &[K],
    input: &Batch2D<T>,
    niter: usize,
    jobs: usize,
    rec: &mut Recorder,
) -> (Batch2D<T>, SimReport) {
    simulate_batch_2d_parallel_core(
        &ScalarEngine,
        dev,
        design,
        stages_per_iter,
        input,
        niter,
        jobs,
        rec,
    )
}

/// Engine-generic body of [`simulate_batch_2d_parallel`]: the fast path
/// reuses it with a lane-parallel engine, keeping fan-out, shard merge and
/// cycle accounting identical between the two executors.
#[allow(clippy::too_many_arguments)]
pub(crate) fn simulate_batch_2d_parallel_core<T, K, E>(
    engine: &E,
    dev: &FpgaDevice,
    design: &StencilDesign,
    stages_per_iter: &[K],
    input: &Batch2D<T>,
    niter: usize,
    jobs: usize,
    rec: &mut Recorder,
) -> (Batch2D<T>, SimReport)
where
    T: Element,
    K: Clone + Sync,
    E: Engine2D<T, K> + Sync,
{
    assert!(niter > 0, "niter must be positive");
    assert_eq!(
        stages_per_iter.len(),
        design.spec.stages,
        "stage count must match the design's spec"
    );
    let (nx, ny, b) = (input.nx(), input.ny(), input.batch());
    check_batch_mode(design, b);
    let wl = Workload::D2 { nx, ny, batch: b };
    let plan = profile::trace_schedule(dev, design, &wl, niter as u64, rec);
    let rc = cycles::design_row_cycles(dev, design, nx, nx);
    let trace_on = rec.is_enabled();
    let clock = rec.cycles_per_us();

    let meshes: Vec<Mesh2D<T>> = (0..b).map(|i| input.mesh(i)).collect();
    let results = sf_par::par_map(jobs, meshes, |i, mesh| {
        let mut shard = if trace_on { Recorder::enabled(clock) } else { Recorder::disabled() };
        let prefix = format!("mesh{i}/window/");
        // Cycle offset of this mesh's rows within the batched stream.
        let base_cycle = (i * ny) as u64 * rc;
        let out = run_mesh_passes_2d(
            engine,
            design,
            stages_per_iter,
            &mesh,
            niter,
            rc,
            &mut shard,
            &prefix,
            base_cycle,
        );
        (out, shard)
    });

    let mut out = Batch2D::<T>::zeros(nx, ny, b);
    let plane = nx * ny;
    let mut shards = Vec::with_capacity(b);
    for (i, (mesh, shard)) in results.into_iter().enumerate() {
        out.as_mut_slice()[i * plane..(i + 1) * plane].copy_from_slice(mesh.as_slice());
        shards.push(shard);
    }
    rec.merge_shards(shards);

    let report =
        SimReport::from_plan(design, &plan, niter as u64, power::fpga_power_w(dev, design));
    (out, report)
}

/// 3D twin of [`simulate_batch_2d_parallel`].
pub fn simulate_batch_3d_parallel<T: Element, K: StencilOp3D<T> + Clone>(
    dev: &FpgaDevice,
    design: &StencilDesign,
    stages_per_iter: &[K],
    input: &Batch3D<T>,
    niter: usize,
    jobs: usize,
    rec: &mut Recorder,
) -> (Batch3D<T>, SimReport) {
    simulate_batch_3d_parallel_core(
        &ScalarEngine,
        dev,
        design,
        stages_per_iter,
        input,
        niter,
        jobs,
        rec,
    )
}

/// Engine-generic body of [`simulate_batch_3d_parallel`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn simulate_batch_3d_parallel_core<T, K, E>(
    engine: &E,
    dev: &FpgaDevice,
    design: &StencilDesign,
    stages_per_iter: &[K],
    input: &Batch3D<T>,
    niter: usize,
    jobs: usize,
    rec: &mut Recorder,
) -> (Batch3D<T>, SimReport)
where
    T: Element,
    K: Clone + Sync,
    E: Engine3D<T, K> + Sync,
{
    assert!(niter > 0, "niter must be positive");
    assert_eq!(
        stages_per_iter.len(),
        design.spec.stages,
        "stage count must match the design's spec"
    );
    let (nx, ny, nz, b) = (input.nx(), input.ny(), input.nz(), input.batch());
    check_batch_mode(design, b);
    let wl = Workload::D3 { nx, ny, nz, batch: b };
    let plan = profile::trace_schedule(dev, design, &wl, niter as u64, rec);
    let plane_cycles = cycles::design_row_cycles(dev, design, nx, nx) * ny as u64;
    let trace_on = rec.is_enabled();
    let clock = rec.cycles_per_us();

    let meshes: Vec<Mesh3D<T>> = (0..b).map(|i| input.mesh(i)).collect();
    let results = sf_par::par_map(jobs, meshes, |i, mesh| {
        let mut shard = if trace_on { Recorder::enabled(clock) } else { Recorder::disabled() };
        let prefix = format!("mesh{i}/window/");
        let base_cycle = (i * nz) as u64 * plane_cycles;
        let out = run_mesh_passes_3d(
            engine,
            design,
            stages_per_iter,
            &mesh,
            niter,
            plane_cycles,
            &mut shard,
            &prefix,
            base_cycle,
        );
        (out, shard)
    });

    let mut out = Batch3D::<T>::zeros(nx, ny, nz, b);
    let vol = nx * ny * nz;
    let mut shards = Vec::with_capacity(b);
    for (i, (mesh, shard)) in results.into_iter().enumerate() {
        out.as_mut_slice()[i * vol..(i + 1) * vol].copy_from_slice(mesh.as_slice());
        shards.push(shard);
    }
    rec.merge_shards(shards);

    let report =
        SimReport::from_plan(design, &plan, niter as u64, power::fpga_power_w(dev, design));
    (out, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::{synthesize, MemKind};
    use crate::exec2d::simulate_2d;
    use crate::exec3d::simulate_3d;
    use sf_kernels::{reference, Jacobi3D, Poisson2D, StencilSpec};
    use sf_mesh::norms;
    use sf_telemetry::{chrome::to_chrome_json, metrics::to_metrics_json};

    fn dev() -> FpgaDevice {
        FpgaDevice::u280()
    }

    fn design_2d(wl: &Workload, b: usize) -> StencilDesign {
        synthesize(&dev(), &StencilSpec::poisson(), 8, 6, ExecMode::Batched { b }, MemKind::Hbm, wl)
            .unwrap()
    }

    #[test]
    fn batch_2d_matches_single_stream_and_reference() {
        let batch = Batch2D::<f32>::random(24, 12, 5, 11, -1.0, 1.0);
        let wl = Workload::D2 { nx: 24, ny: 12, batch: 5 };
        let ds = design_2d(&wl, 5);
        let (legacy, legacy_rep) = simulate_2d(&dev(), &ds, &[Poisson2D], &batch, 9);
        for jobs in [1, 2, 4] {
            let (out, rep) = simulate_batch_2d_parallel(
                &dev(),
                &ds,
                &[Poisson2D],
                &batch,
                9,
                jobs,
                &mut Recorder::disabled(),
            );
            assert!(norms::bit_equal(out.as_slice(), legacy.as_slice()), "jobs={jobs}");
            assert_eq!(rep.total_cycles, legacy_rep.total_cycles);
            assert_eq!(rep.runtime_s, legacy_rep.runtime_s);
        }
        let expect = reference::run_batch_2d(&Poisson2D, &batch, 9);
        assert!(norms::bit_equal(legacy.as_slice(), expect.as_slice()));
    }

    #[test]
    fn batch_2d_traces_are_jobs_invariant() {
        let batch = Batch2D::<f32>::random(20, 10, 4, 3, -1.0, 1.0);
        let wl = Workload::D2 { nx: 20, ny: 10, batch: 4 };
        let ds = design_2d(&wl, 4);
        let run = |jobs: usize| {
            let mut rec = Recorder::enabled(ds.freq_hz / 1e6);
            let (out, _) =
                simulate_batch_2d_parallel(&dev(), &ds, &[Poisson2D], &batch, 7, jobs, &mut rec);
            (out, to_chrome_json(&rec), to_metrics_json(&rec))
        };
        let (out1, chrome1, metrics1) = run(1);
        for jobs in [2, 3, 8] {
            let (out, chrome, metrics) = run(jobs);
            assert!(norms::bit_equal(out.as_slice(), out1.as_slice()), "jobs={jobs}");
            assert_eq!(chrome, chrome1, "chrome trace must be byte-identical at jobs={jobs}");
            assert_eq!(metrics, metrics1, "metrics JSON must be byte-identical at jobs={jobs}");
        }
    }

    #[test]
    fn batch_2d_trace_has_per_mesh_swimlanes_and_summed_counters() {
        let batch = Batch2D::<f32>::random(16, 8, 3, 5, -1.0, 1.0);
        let wl = Workload::D2 { nx: 16, ny: 8, batch: 3 };
        let ds = design_2d(&wl, 3);
        let mut rec = Recorder::enabled(ds.freq_hz / 1e6);
        let _ = simulate_batch_2d_parallel(&dev(), &ds, &[Poisson2D], &batch, 6, 2, &mut rec);
        for i in 0..3 {
            let prefix = format!("mesh{i}/window/");
            assert!(
                rec.track_names().iter().any(|t| t.starts_with(&prefix)),
                "missing swimlane {prefix}"
            );
        }
        // every mesh streams its ny rows on the traced first pass
        assert_eq!(rec.counter("window.rows_streamed"), 3 * 8);
        // schedule trace still present exactly once
        assert!(rec.find_track("pipeline").is_some());
    }

    #[test]
    fn batch_3d_matches_single_stream_for_all_jobs() {
        let batch = Batch3D::<f32>::random(10, 10, 8, 4, 21, -1.0, 1.0);
        let wl = Workload::D3 { nx: 10, ny: 10, nz: 8, batch: 4 };
        let ds = synthesize(
            &dev(),
            &StencilSpec::jacobi(),
            8,
            3,
            ExecMode::Batched { b: 4 },
            MemKind::Hbm,
            &wl,
        )
        .unwrap();
        let k = Jacobi3D::smoothing();
        let (legacy, legacy_rep) = simulate_3d(&dev(), &ds, &[k], &batch, 6);
        let run = |jobs: usize| {
            let mut rec = Recorder::enabled(ds.freq_hz / 1e6);
            let (out, rep) =
                simulate_batch_3d_parallel(&dev(), &ds, &[k], &batch, 6, jobs, &mut rec);
            (out, rep, to_chrome_json(&rec))
        };
        let (out1, rep1, chrome1) = run(1);
        assert!(norms::bit_equal(out1.as_slice(), legacy.as_slice()));
        assert_eq!(rep1.total_cycles, legacy_rep.total_cycles);
        for jobs in [2, 4] {
            let (out, rep, chrome) = run(jobs);
            assert!(norms::bit_equal(out.as_slice(), out1.as_slice()), "jobs={jobs}");
            assert_eq!(rep.total_cycles, rep1.total_cycles);
            assert_eq!(chrome, chrome1, "jobs={jobs}");
        }
        assert_eq!(
            {
                let mut rec = Recorder::enabled(ds.freq_hz / 1e6);
                let _ = simulate_batch_3d_parallel(&dev(), &ds, &[k], &batch, 6, 2, &mut rec);
                rec.counter("window.planes_streamed")
            },
            4 * 8
        );
    }

    #[test]
    fn single_mesh_baseline_accepted() {
        let batch = Batch2D::<f32>::random(16, 8, 1, 9, -1.0, 1.0);
        let wl = Workload::D2 { nx: 16, ny: 8, batch: 1 };
        let ds = synthesize(
            &dev(),
            &StencilSpec::poisson(),
            8,
            4,
            ExecMode::Baseline,
            MemKind::Hbm,
            &wl,
        )
        .unwrap();
        let (out, _) = simulate_batch_2d_parallel(
            &dev(),
            &ds,
            &[Poisson2D],
            &batch,
            5,
            4,
            &mut Recorder::disabled(),
        );
        let (legacy, _) = simulate_2d(&dev(), &ds, &[Poisson2D], &batch, 5);
        assert!(norms::bit_equal(out.as_slice(), legacy.as_slice()));
    }

    #[test]
    #[should_panic(expected = "batch size mismatch")]
    fn batch_mismatch_panics() {
        let batch = Batch2D::<f32>::zeros(16, 8, 3);
        let wl = Workload::D2 { nx: 16, ny: 8, batch: 4 };
        let ds = design_2d(&wl, 4);
        let _ = simulate_batch_2d_parallel(
            &dev(),
            &ds,
            &[Poisson2D],
            &batch,
            2,
            2,
            &mut Recorder::disabled(),
        );
    }

    #[test]
    #[should_panic(expected = "Baseline or Batched")]
    fn tiled_design_rejected() {
        let batch = Batch2D::<f32>::zeros(200, 30, 1);
        let wl = Workload::D2 { nx: 200, ny: 30, batch: 1 };
        let ds = synthesize(
            &dev(),
            &StencilSpec::poisson(),
            8,
            8,
            ExecMode::Tiled1D { tile_m: 64 },
            MemKind::Hbm,
            &wl,
        )
        .unwrap();
        let _ = simulate_batch_2d_parallel(
            &dev(),
            &ds,
            &[Poisson2D],
            &batch,
            2,
            2,
            &mut Recorder::disabled(),
        );
    }
}
