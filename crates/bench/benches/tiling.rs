//! Spatial-blocking ablations: tile geometry cost, tiled vs baseline
//! execution, and the effect of the design choices DESIGN.md calls out
//! (AXI alignment, halo depth).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sf_fpga::design::{synthesize, ExecMode, MemKind, Workload};
use sf_fpga::{exec2d, FpgaDevice};
use sf_kernels::{Poisson2D, StencilSpec};
use sf_mesh::{Mesh2D, TileGrid1D, TileGrid2D};

fn bench_grid_construction(c: &mut Criterion) {
    let mut g = c.benchmark_group("tile_geometry");
    for n in [15_000usize, 20_000] {
        g.bench_with_input(BenchmarkId::new("grid1d", n), &n, |b, &n| {
            b.iter(|| TileGrid1D::new(n, 4096, 60, 16))
        });
    }
    g.bench_function("grid2d_600", |b| b.iter(|| TileGrid2D::new(600, 600, 256, 256, 3, 16)));
    g.finish();
}

fn bench_tiled_vs_baseline_execution(c: &mut Criterion) {
    let mut g = c.benchmark_group("tiled_vs_baseline_numeric");
    let d = FpgaDevice::u280();
    let m = Mesh2D::<f32>::random(512, 64, 5, -1.0, 1.0);
    let wl = Workload::D2 { nx: 512, ny: 64, batch: 1 };
    let iters = 8usize;
    g.throughput(Throughput::Elements((m.len() * iters) as u64));

    let base = synthesize(&d, &StencilSpec::poisson(), 8, 4, ExecMode::Baseline, MemKind::Hbm, &wl)
        .unwrap();
    g.bench_function("baseline", |b| {
        b.iter(|| exec2d::simulate_mesh_2d(&d, &base, &[Poisson2D], &m, iters))
    });

    for tile in [64usize, 128, 256] {
        let tiled = synthesize(
            &d,
            &StencilSpec::poisson(),
            8,
            4,
            ExecMode::Tiled1D { tile_m: tile },
            MemKind::Ddr4,
            &wl,
        )
        .unwrap();
        g.bench_with_input(BenchmarkId::new("tiled", tile), &tile, |b, _| {
            b.iter(|| exec2d::simulate_mesh_2d(&d, &tiled, &[Poisson2D], &m, iters))
        });
    }
    g.finish();
}

/// Ablation: the modeled bandwidth effect of tile size and alignment — the
/// quantities behind Fig. 3c / Table IV's tiled section.
fn bench_tiled_plan_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("tiled_plan_ablation");
    let d = FpgaDevice::u280();
    let wl = Workload::D2 { nx: 15_000, ny: 15_000, batch: 1 };
    for tile in [1024usize, 4096, 8000] {
        let ds = synthesize(
            &d,
            &StencilSpec::poisson(),
            8,
            60,
            ExecMode::Tiled1D { tile_m: tile },
            MemKind::Ddr4,
            &wl,
        )
        .unwrap();
        g.bench_with_input(BenchmarkId::new("plan_15000", tile), &tile, |b, _| {
            b.iter(|| sf_fpga::cycles::plan(&d, &ds, &wl, 100))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_grid_construction,
    bench_tiled_vs_baseline_execution,
    bench_tiled_plan_ablation
);
criterion_main!(benches);
