//! Property tests for the analytic model: equation identities, prediction
//! ordering, DSE optimality, and feasibility consistency with synthesis.

use proptest::prelude::*;
use sf_fpga::design::{synthesize, ExecMode, MemKind, Workload};
use sf_fpga::FpgaDevice;
use sf_kernels::StencilSpec;
use sf_model::{equations, feasibility::FeasibilityReport, predict, DseOptions, PredictionLevel};

fn dev() -> FpgaDevice {
    FpgaDevice::u280()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Eq. (5) is one pass of eq. (2) divided by the mesh size when `m` is a
    /// multiple of `V` — the identity the paper derives it from (one pass of
    /// the `p`-deep pipeline advances the whole mesh by `p` iterations).
    #[test]
    fn eq5_is_eq2_per_cell(
        mv in 1u64..64,
        n in 1u64..2000,
        p in 1u64..64,
        v_pow in 0u32..4,
    ) {
        let v = 1u64 << v_pow;
        let m = mv * v;
        let clks_one_pass = equations::clks_2d(p, p, m, n, v, 2);
        let per_cell = clks_one_pass as f64 / (m * n) as f64;
        let eq5 = equations::clks_per_cell_2d(p, n, v, 2);
        prop_assert!((per_cell - eq5).abs() < 1e-9, "{per_cell} vs {eq5}");
    }

    /// Eq. (10) equals eq. (8) / eq. (9) — throughput is valid cells over
    /// block cycles, exactly as the paper derives it.
    #[test]
    fn eq10_is_eq8_over_eq9(
        m in 64u64..2048,
        n in 64u64..2048,
        l in 64u64..4096,
        p in 1u64..8,
        v_pow in 0u32..7,
    ) {
        let v = 1u64 << v_pow;
        let d = 2u64;
        prop_assume!(m > p * d && n > p * d);
        let valid = equations::block_valid_3d(m, n, l, p, d) as f64;
        let clks = equations::clks_block_3d(m, n, l, p, v, d);
        let t_direct = valid / clks;
        // eq. (10) assumes M and N exactly divisible contributions; compare
        // within the rounding slack of M/V
        let t_eq10 = equations::throughput_3d(m as f64, n as f64, l as f64, p as f64, v as f64, d as f64);
        let rel = (t_direct - t_eq10).abs() / t_eq10;
        prop_assert!(rel < 0.02, "direct {t_direct} vs eq10 {t_eq10}");
    }

    /// Extended predictions always dominate ideal ones, and both grow
    /// monotonically with iterations.
    #[test]
    fn prediction_ordering(
        nx in 32usize..400,
        ny in 32usize..400,
        p in 1usize..30,
        niter in 1u64..10_000,
    ) {
        let d = dev();
        let wl = Workload::D2 { nx, ny, batch: 1 };
        let ds = synthesize(&d, &StencilSpec::poisson(), 8, p, ExecMode::Baseline, MemKind::Hbm, &wl)
            .unwrap();
        let i1 = predict(&d, &ds, &wl, niter, PredictionLevel::Ideal).unwrap();
        let e1 = predict(&d, &ds, &wl, niter, PredictionLevel::Extended).unwrap();
        prop_assert!(e1.runtime_s >= i1.runtime_s);
        let i2 = predict(&d, &ds, &wl, niter + p as u64, PredictionLevel::Ideal).unwrap();
        prop_assert!(i2.cycles > i1.cycles);
    }

    /// The DSE winner is at least as fast (by its own metric) as the paper's
    /// hand-picked configuration whenever that configuration is feasible.
    #[test]
    fn dse_beats_or_matches_manual_choice(
        nx in 64usize..500,
        ny in 64usize..500,
        niter in 100u64..20_000,
    ) {
        let d = dev();
        let wl = Workload::D2 { nx, ny, batch: 1 };
        let opts = DseOptions::default();
        let best = sf_model::dse::best(&d, &StencilSpec::poisson(), &wl, niter, &opts)
            .unwrap()
            .unwrap();
        let manual = synthesize(&d, &StencilSpec::poisson(), 8, 60, ExecMode::Baseline, MemKind::Hbm, &wl)
            .unwrap();
        let manual_rt = sf_fpga::cycles::plan(&d, &manual, &wl, niter).runtime_s;
        prop_assert!(best.planned_runtime_s <= manual_rt * 1.0001);
    }

    /// Feasibility's p_dsp agrees with what synthesis accepts: p = p_dsp
    /// synthesizes (given memory headroom), p far beyond it does not.
    #[test]
    fn feasibility_consistent_with_synthesis(
        v_pow in 0u32..4,
        ny in 32usize..200,
    ) {
        let d = dev();
        let v = 1usize << v_pow;
        let spec = StencilSpec::poisson();
        let wl = Workload::D2 { nx: 256, ny, batch: 1 };
        let rep = FeasibilityReport::analyze(&d, &spec, v, 256, MemKind::Hbm).unwrap();
        prop_assume!(rep.p_dsp >= 1);
        // p = p_dsp either synthesizes or is rejected for *memory* (very deep
        // V=1 chains exhaust window/FIFO BRAM first) — never for DSPs
        match synthesize(&d, &spec, v, rep.p_dsp, ExecMode::Baseline, MemKind::Hbm, &wl) {
            Ok(_) => {}
            Err(sf_fpga::SynthesisError::InsufficientMemory { .. }) => {}
            Err(e) => prop_assert!(false, "unexpected rejection at p_dsp: {e}"),
        }
        // 30% beyond the absolute DSP budget must fail
        let too_deep = (d.dsp_total / (v * spec.gdsp())) + 1;
        let bad = synthesize(&d, &spec, v, too_deep + too_deep / 3, ExecMode::Baseline, MemKind::Hbm, &wl);
        prop_assert!(bad.is_err());
    }

    /// The pipeline-fill term is in lockstep between the simulator's
    /// `sf_fpga::cycles::fill_units` and the model's eq. (2) fill — including
    /// odd-order stencils, where both apply ⌈D/2⌉ per chained stage (the old
    /// floored product `p·stages·D/2` under-priced fill for odd D).
    #[test]
    fn fill_term_locksteps_simulator_and_model(
        order in 1usize..9,
        stages in 1usize..5,
        p in 1usize..12,
        ny in 16usize..128,
    ) {
        let d = dev();
        let mut spec = StencilSpec::poisson();
        spec.order = order;
        spec.stages = stages;
        let wl = Workload::D2 { nx: 256, ny, batch: 1 };
        let ds = match synthesize(&d, &spec, 8, p, ExecMode::Baseline, MemKind::Hbm, &wl) {
            Ok(ds) => ds,
            Err(_) => return Ok(()), // infeasible corner of the sweep
        };
        let fill = (p * stages * order.div_ceil(2)) as u64;
        prop_assert_eq!(sf_fpga::cycles::fill_units(&ds), fill);
        // the ideal prediction is eq. (2) with the effective (even) order
        // 2·stages·⌈D/2⌉ — i.e. the same fill rows per pass
        let d_eff = 2 * (stages * order.div_ceil(2)) as u64;
        let ideal = predict(&d, &ds, &wl, 500, PredictionLevel::Ideal).unwrap();
        prop_assert_eq!(ideal.cycles, equations::clks_2d(500, p as u64, 256, ny as u64, 8, d_eff));
        // on compute-bound rows the extended model must agree with the
        // simulator's plan exactly, fill term included
        let plan = sf_fpga::cycles::plan(&d, &ds, &wl, 500);
        let compute_bound_pass = (ny as u64 + fill)
            * (256u64.div_ceil(8) + d.axi_issue_gap_cycles as u64)
            + ds.pipeline_latency_cycles;
        if plan.cycles_per_pass == compute_bound_pass {
            let e = predict(&d, &ds, &wl, 500, PredictionLevel::Extended).unwrap();
            prop_assert_eq!(e.cycles, plan.total_cycles);
        }
    }

    /// Batching never slows the modeled per-mesh solve.
    #[test]
    fn batching_never_hurts(
        nx in 32usize..300,
        ny in 16usize..200,
        b in 2usize..64,
    ) {
        let d = dev();
        let solo = Workload::D2 { nx, ny, batch: 1 };
        let ds1 = synthesize(&d, &StencilSpec::poisson(), 8, 20, ExecMode::Baseline, MemKind::Hbm, &solo)
            .unwrap();
        let t1 = sf_fpga::cycles::plan(&d, &ds1, &solo, 1000).runtime_s;
        let batched = Workload::D2 { nx, ny, batch: b };
        let ds2 = synthesize(&d, &StencilSpec::poisson(), 8, 20, ExecMode::Batched { b }, MemKind::Hbm, &batched)
            .unwrap();
        let t2 = sf_fpga::cycles::plan(&d, &ds2, &batched, 1000).runtime_s / b as f64;
        prop_assert!(t2 <= t1 * 1.0001, "batched per-mesh {t2} vs solo {t1}");
    }
}
