//! Seed-driven fault plans and the runtime injector.
//!
//! A [`FaultPlan`] names *what* to inject (one [`FaultKind`]), *how often*
//! (a rate in faults per million opportunities) and *from which seed*. The
//! [`FaultInjector`] executes the plan: the simulator consults it at every
//! opportunity point and the injector rolls a SplitMix64 stream to decide.
//! Identical seeds and identical simulator schedules therefore reproduce
//! identical fault sequences — the property every campaign test pins.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use serde::{Deserialize, Serialize};

/// The datapath fault taxonomy (ISSUE 2 / §Resilience in EXPERIMENTS.md).
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FaultKind {
    /// Flip one bit of one lane of a window-buffer cell.
    BitFlip,
    /// Drop one element (row/plane) from a stream FIFO.
    FifoDrop,
    /// Duplicate one element of a stream FIFO.
    FifoDup,
    /// Corrupt the payload of one stream FIFO element.
    FifoCorrupt,
    /// Delay an AXI burst (absorbed by the retry/backoff model).
    AxiDelay,
    /// Fail an AXI burst (retried with backoff; may exhaust the budget).
    AxiFail,
}

impl FaultKind {
    /// Every kind, in campaign sweep order.
    pub const ALL: [FaultKind; 6] = [
        FaultKind::BitFlip,
        FaultKind::FifoDrop,
        FaultKind::FifoDup,
        FaultKind::FifoCorrupt,
        FaultKind::AxiDelay,
        FaultKind::AxiFail,
    ];

    /// Stable lowercase name (CLI flag values, JSON keys).
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::BitFlip => "bitflip",
            FaultKind::FifoDrop => "fifo-drop",
            FaultKind::FifoDup => "fifo-dup",
            FaultKind::FifoCorrupt => "fifo-corrupt",
            FaultKind::AxiDelay => "axi-delay",
            FaultKind::AxiFail => "axi-fail",
        }
    }

    /// Parse a CLI name produced by [`FaultKind::name`].
    pub fn parse(s: &str) -> Option<FaultKind> {
        FaultKind::ALL.iter().copied().find(|k| k.name() == s)
    }
}

impl core::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// A deterministic fault campaign cell: one kind, one rate, one seed.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// RNG seed — same seed, same schedule ⇒ same injections.
    pub seed: u64,
    /// Fault kind to inject.
    pub kind: FaultKind,
    /// Injection rate in faults per million opportunities.
    pub rate_ppm: u32,
    /// Hard cap on injections (0 = unlimited) so a high rate cannot turn a
    /// run into noise.
    pub max_injections: u32,
}

impl FaultPlan {
    /// A plan injecting `kind` at `rate_ppm` from `seed`, capped at one
    /// injection — the campaign default (single-fault trials make
    /// detection attribution unambiguous).
    pub fn single(seed: u64, kind: FaultKind, rate_ppm: u32) -> Self {
        FaultPlan { seed, kind, rate_ppm, max_injections: 1 }
    }
}

/// Where a fault landed, for the campaign report.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultSite {
    /// Window-buffer cell: pipeline stage, stream unit, cell, lane, bit.
    Window {
        /// Chained-stage index.
        stage: usize,
        /// Stream unit (row or plane) index.
        unit: usize,
        /// Cell within the unit.
        cell: usize,
        /// f32 lane within the cell.
        lane: usize,
        /// Bit within the lane.
        bit: u32,
    },
    /// Stream FIFO element (row/plane index in the stream).
    Stream {
        /// Stream unit index.
        unit: usize,
    },
    /// AXI burst index within the run.
    Axi {
        /// Burst index.
        burst: u64,
    },
}

/// One injected fault: what and where.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultRecord {
    /// The injected kind.
    pub kind: FaultKind,
    /// The injection site.
    pub site: FaultSite,
}

/// A window-buffer bit flip: which cell, lane and bit to corrupt.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct BitFlip {
    /// Cell within the streamed unit.
    pub cell: usize,
    /// f32 lane within the cell.
    pub lane: usize,
    /// Bit within the lane (0..32).
    pub bit: u32,
}

/// What to do with one stream element.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum StreamFault {
    /// Pass through untouched.
    None,
    /// Drop the element (the consumer starves — watchdog territory).
    Drop,
    /// Duplicate the element (shifts the stream — checksum territory).
    Dup,
    /// Corrupt the element payload.
    Corrupt,
}

/// The runtime fault source. Deterministic: consult order × seed fixes the
/// entire injection sequence.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: StdRng,
    opportunities: u64,
    log: Vec<FaultRecord>,
}

impl FaultInjector {
    /// Build an injector executing `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            rng: StdRng::seed_from_u64(plan.seed ^ 0x5f5f_fa17_u64.rotate_left(plan.kind as u32)),
            opportunities: 0,
            log: Vec::new(),
        }
    }

    /// An injector that never injects (rate 0) — the executors' default.
    pub fn disabled() -> Self {
        FaultInjector::new(FaultPlan {
            seed: 0,
            kind: FaultKind::BitFlip,
            rate_ppm: 0,
            max_injections: 0,
        })
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Number of injections performed so far.
    pub fn injected(&self) -> u64 {
        self.log.len() as u64
    }

    /// Opportunity points consulted so far.
    pub fn opportunities(&self) -> u64 {
        self.opportunities
    }

    /// Every injection, in order.
    pub fn log(&self) -> &[FaultRecord] {
        &self.log
    }

    /// One Bernoulli roll at the plan's rate. Advances the RNG exactly once
    /// per opportunity of the plan's kind, so the stream is stable under
    /// refactors that do not reorder opportunity points.
    fn roll(&mut self, kind: FaultKind) -> bool {
        if kind != self.plan.kind || self.plan.rate_ppm == 0 {
            return false;
        }
        if self.plan.max_injections != 0 && self.log.len() as u32 >= self.plan.max_injections {
            return false;
        }
        self.opportunities += 1;
        (self.rng.next_u64() % 1_000_000) < self.plan.rate_ppm as u64
    }

    /// Window-buffer opportunity: should the cell fed to `stage` as part of
    /// stream `unit` (of `cells` cells × `lanes` lanes) take a bit flip?
    pub fn window_bitflip(
        &mut self,
        stage: usize,
        unit: usize,
        cells: usize,
        lanes: usize,
    ) -> Option<BitFlip> {
        if cells == 0 || lanes == 0 || !self.roll(FaultKind::BitFlip) {
            return None;
        }
        let cell = (self.rng.next_u64() % cells as u64) as usize;
        let lane = (self.rng.next_u64() % lanes as u64) as usize;
        let bit = (self.rng.next_u64() % 32) as u32;
        self.log.push(FaultRecord {
            kind: FaultKind::BitFlip,
            site: FaultSite::Window { stage, unit, cell, lane, bit },
        });
        Some(BitFlip { cell, lane, bit })
    }

    /// Stream-FIFO opportunity for element `unit`: drop, duplicate, corrupt
    /// or pass through.
    pub fn stream_fault(&mut self, unit: usize) -> StreamFault {
        for (kind, fault) in [
            (FaultKind::FifoDrop, StreamFault::Drop),
            (FaultKind::FifoDup, StreamFault::Dup),
            (FaultKind::FifoCorrupt, StreamFault::Corrupt),
        ] {
            if self.roll(kind) {
                self.log.push(FaultRecord { kind, site: FaultSite::Stream { unit } });
                return fault;
            }
        }
        StreamFault::None
    }

    /// AXI burst opportunity: `Ok` to proceed normally, or a verdict from
    /// the retry model. `burst` is the burst index (for the record only).
    pub fn axi_burst(&mut self, burst: u64, policy: &RetryPolicy) -> AxiVerdict {
        use crate::retry::AxiVerdict as V;
        if self.roll(FaultKind::AxiDelay) {
            self.log
                .push(FaultRecord { kind: FaultKind::AxiDelay, site: FaultSite::Axi { burst } });
            // One transient retry: backoff for attempt 1.
            return V::Recovered { attempts: 1, extra_cycles: policy.backoff_cycles(1) };
        }
        if self.roll(FaultKind::AxiFail) {
            self.log.push(FaultRecord { kind: FaultKind::AxiFail, site: FaultSite::Axi { burst } });
            // The burst fails `fails` consecutive times before succeeding —
            // or exhausts the retry budget.
            let fails = 1 + (self.rng.next_u64() % (policy.max_retries as u64 + 1)) as u32;
            if fails > policy.max_retries {
                return V::Exhausted { attempts: fails };
            }
            return V::Recovered { attempts: fails, extra_cycles: policy.total_backoff(fails) };
        }
        V::Ok
    }
}

use crate::retry::{AxiVerdict, RetryPolicy};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_injections() {
        let mk = || {
            let mut inj = FaultInjector::new(FaultPlan {
                seed: 42,
                kind: FaultKind::BitFlip,
                rate_ppm: 200_000,
                max_injections: 0,
            });
            let mut hits = Vec::new();
            for unit in 0..200 {
                if let Some(f) = inj.window_bitflip(0, unit, 64, 1) {
                    hits.push((unit, f.cell, f.lane, f.bit));
                }
            }
            (hits, inj.log().to_vec())
        };
        let (a, la) = mk();
        let (b, lb) = mk();
        assert_eq!(a, b);
        assert_eq!(la, lb);
        assert!(!a.is_empty(), "20% rate over 200 opportunities must fire");
    }

    #[test]
    fn different_seeds_differ() {
        let run = |seed| {
            let mut inj = FaultInjector::new(FaultPlan {
                seed,
                kind: FaultKind::FifoDrop,
                rate_ppm: 100_000,
                max_injections: 0,
            });
            (0..500).map(|u| inj.stream_fault(u)).collect::<Vec<_>>()
        };
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn rate_zero_never_fires_and_disabled_is_free() {
        let mut inj = FaultInjector::disabled();
        for unit in 0..1000 {
            assert_eq!(inj.stream_fault(unit), StreamFault::None);
            assert!(inj.window_bitflip(0, unit, 8, 1).is_none());
        }
        assert_eq!(inj.injected(), 0);
        assert_eq!(inj.opportunities(), 0);
    }

    #[test]
    fn max_injections_caps_the_plan() {
        let mut inj = FaultInjector::new(FaultPlan::single(7, FaultKind::FifoCorrupt, 1_000_000));
        let faults: Vec<_> =
            (0..50).map(|u| inj.stream_fault(u)).filter(|f| *f != StreamFault::None).collect();
        assert_eq!(faults.len(), 1, "single-fault plan must stop after one injection");
        assert_eq!(inj.injected(), 1);
    }

    #[test]
    fn kinds_do_not_cross_fire() {
        // A BitFlip plan must never produce stream or AXI faults.
        let mut inj = FaultInjector::new(FaultPlan {
            seed: 3,
            kind: FaultKind::BitFlip,
            rate_ppm: 1_000_000,
            max_injections: 0,
        });
        let policy = RetryPolicy::default();
        for u in 0..100 {
            assert_eq!(inj.stream_fault(u), StreamFault::None);
            assert!(matches!(inj.axi_burst(u as u64, &policy), AxiVerdict::Ok));
        }
        assert!(inj.window_bitflip(0, 0, 4, 1).is_some());
    }

    #[test]
    fn fault_kind_names_roundtrip() {
        for k in FaultKind::ALL {
            assert_eq!(FaultKind::parse(k.name()), Some(k));
        }
        assert_eq!(FaultKind::parse("meteor-strike"), None);
    }

    #[test]
    fn axi_fail_recovers_or_exhausts() {
        let policy = RetryPolicy::default();
        let mut inj = FaultInjector::new(FaultPlan {
            seed: 11,
            kind: FaultKind::AxiFail,
            rate_ppm: 1_000_000,
            max_injections: 0,
        });
        let mut recovered = 0;
        let mut exhausted = 0;
        for b in 0..64 {
            match inj.axi_burst(b, &policy) {
                AxiVerdict::Recovered { attempts, extra_cycles } => {
                    assert!(attempts >= 1 && attempts <= policy.max_retries);
                    assert!(extra_cycles > 0);
                    recovered += 1;
                }
                AxiVerdict::Exhausted { attempts } => {
                    assert!(attempts > policy.max_retries);
                    exhausted += 1;
                }
                AxiVerdict::Ok => unreachable!("rate is 100%"),
            }
        }
        assert!(recovered > 0 && exhausted > 0, "both outcomes must occur over 64 bursts");
    }
}
