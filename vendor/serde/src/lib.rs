//! Vendored minimal serde facade.
//!
//! This workspace must build with no network access, so the real serde is
//! replaced by a small self-describing value model: [`Serialize`] converts a
//! type into a [`Value`] tree and [`Deserialize`] reads it back. The derive
//! macros (re-exported from the in-tree `serde_derive`) generate impls whose
//! JSON encoding — via the in-tree `serde_json` — matches real serde's
//! defaults for the shapes the workspace uses (externally tagged enums,
//! field-ordered structs).

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like value tree: the interchange format between [`Serialize`],
/// [`Deserialize`] and the `serde_json` writer/parser.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative integers.
    I64(i64),
    /// Non-negative integers.
    U64(u64),
    /// Floating-point numbers.
    F64(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, insertion-ordered.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrow as an object (key/value pairs) if this is one.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow as an array if this is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow as a string if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value as `f64` if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::I64(v) => Some(v as f64),
            Value::U64(v) => Some(v as f64),
            Value::F64(v) => Some(v),
            _ => None,
        }
    }

    /// Numeric value as `u64` if non-negative integral.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            Value::I64(v) if v >= 0 => Some(v as u64),
            Value::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            _ => None,
        }
    }

    /// Numeric value as `i64` if integral.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(v) => Some(v),
            Value::U64(v) if v <= i64::MAX as u64 => Some(v as i64),
            Value::F64(v) if v.fract() == 0.0 && v.abs() <= i64::MAX as f64 => Some(v as i64),
            _ => None,
        }
    }

    /// Boolean value if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Look up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Serialization/deserialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// A free-form error.
    pub fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }

    /// "expected X while reading Y".
    pub fn expected(what: &str, ty: &str) -> Self {
        Error(format!("expected {what} while deserializing {ty}"))
    }

    /// Unknown enum variant.
    pub fn unknown_variant(variant: &str, ty: &str) -> Self {
        Error(format!("unknown variant `{variant}` for enum {ty}"))
    }
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Convert a value into the [`Value`] interchange tree.
pub trait Serialize {
    /// Build the value tree.
    fn to_value(&self) -> Value;
}

/// Rebuild a value from the [`Value`] interchange tree.
pub trait Deserialize: Sized {
    /// Parse the value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---- primitive impls -------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| Error::expected("unsigned integer", stringify!($t)))?;
                <$t>::try_from(n).map_err(|_| Error::new(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| Error::expected("integer", stringify!($t)))?;
                <$t>::try_from(n).map_err(|_| Error::new(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::expected("number", "f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().map(|x| x as f32).ok_or_else(|| Error::expected("number", "f32"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::expected("bool", "bool"))
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::expected("string", "char"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::expected("single-char string", "char")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str().map(str::to_string).ok_or_else(|| Error::expected("string", "String"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::expected("array", "Vec"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Default + Copy, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let arr = v.as_array().ok_or_else(|| Error::expected("array", "[T; N]"))?;
        if arr.len() != N {
            return Err(Error::new(format!("expected array of {N}, got {}", arr.len())));
        }
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(arr) {
            *slot = T::from_value(item)?;
        }
        Ok(out)
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let arr = v.as_array().ok_or_else(|| Error::expected("array", "tuple"))?;
                let mut it = arr.iter();
                Ok(($({
                    let _ = $idx;
                    $t::from_value(it.next().ok_or_else(|| Error::expected("tuple element", "tuple"))?)?
                },)+))
            }
        }
    )*};
}

impl_tuple! {
    (A:0)
    (A:0, B:1)
    (A:0, B:1, C:2)
    (A:0, B:1, C:2, D:3)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl<K: AsRef<str>, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.as_ref().to_string(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::expected("object", "BTreeMap"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

/// Support helpers used by the generated derive code. Not a public API.
#[doc(hidden)]
pub mod __private {
    use super::{Error, Value};

    /// Look up a required struct field.
    pub fn field<'a>(obj: &'a [(String, Value)], name: &str, ty: &str) -> Result<&'a Value, Error> {
        obj.iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| Error::new(format!("missing field `{name}` for {ty}")))
    }

    /// Borrow a fixed-arity array.
    pub fn array<'a>(v: &'a Value, n: usize, ty: &str) -> Result<&'a [Value], Error> {
        let arr = v.as_array().ok_or_else(|| Error::expected("array", ty))?;
        if arr.len() != n {
            return Err(Error::new(format!(
                "expected {n}-element array for {ty}, got {}",
                arr.len()
            )));
        }
        Ok(arr)
    }

    /// Split an externally-tagged enum value into `(tag, payload)`.
    /// Unit variants arrive as a bare string; data variants as a
    /// single-key object.
    pub fn enum_parts<'a>(v: &'a Value, ty: &str) -> Result<(&'a str, Option<&'a Value>), Error> {
        match v {
            Value::String(s) => Ok((s.as_str(), None)),
            Value::Object(m) if m.len() == 1 => Ok((m[0].0.as_str(), Some(&m[0].1))),
            _ => Err(Error::expected("string or single-key object", ty)),
        }
    }
}
