//! Run-to-steady-state: the explicit-solver termination criterion of §II
//! ("the time step iteration usually continues until a steady state solution
//! is achieved") driven through the FPGA pipeline in design-sized passes.
//!
//! ```text
//! cargo run --release --example steady_state
//! ```

use sf_core::prelude::*;
use sf_core::solvers::PoissonSolver;
use sf_kernels::workloads;

fn main() {
    let wf = Workflow::u280_vs_v100();
    let (nx, ny) = (96usize, 96usize);
    let wl = Workload::D2 { nx, ny, batch: 1 };
    let solver = PoissonSolver::auto(&wf, &wl, 50_000).expect("design exists");
    println!(
        "design: V={} p={} @ {:.0} MHz — each pass advances {} iterations",
        solver.design.v,
        solver.design.p,
        solver.design.freq_mhz(),
        solver.design.p
    );

    // a hot plate relaxing toward its cold boundary
    let input = Batch2D::from_meshes(&[workloads::hotspot_2d(nx, ny, 24, 50.0)]);
    for tol in [1e-2f32, 1e-4, 1e-6] {
        let (ss, rep) = solver.run_to_steady_state(&input, tol, 200_000);
        println!(
            "tol {tol:>7.0e}: {} iterations, residual {:.2e}, converged {}, \
             simulated {:.3} ms / {:.4} J",
            ss.iterations,
            ss.residual,
            ss.converged,
            rep.runtime_s * 1e3,
            rep.energy_j,
        );
    }

    // physics check: steady state of the hold-boundary problem is the
    // boundary value (zero) everywhere
    let (ss, _) = solver.run_to_steady_state(&input, 1e-7, 500_000);
    let peak = sf_mesh::norms::max_norm_2d(&ss.result.mesh(0));
    println!("final field max |u| = {peak:.3e} (relaxes to the zero boundary)");
}
