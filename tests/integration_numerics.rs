//! Numeric cross-validation: every execution path (sequential reference,
//! Rayon parallel, FPGA dataflow simulator in each mode) must agree
//! **bit-exactly** on every application.

use sf_core::prelude::*;
use sf_fpga::design::synthesize;
use sf_fpga::{exec2d, exec3d};
use sf_kernels::{parallel, reference, rtm, RtmStage};
use sf_mesh::norms;

fn dev() -> FpgaDevice {
    FpgaDevice::u280()
}

#[test]
fn poisson_three_way_agreement() {
    let m = Mesh2D::<f32>::random(50, 34, 77, -2.0, 2.0);
    let iters = 15;

    let seq = reference::run_2d(&Poisson2D, &m, iters);
    let par = parallel::par_run_2d(&Poisson2D, &m, iters);
    assert!(norms::bit_equal(seq.as_slice(), par.as_slice()), "rayon vs seq");

    let wl = Workload::D2 { nx: 50, ny: 34, batch: 1 };
    let ds =
        synthesize(&dev(), &StencilSpec::poisson(), 8, 4, ExecMode::Baseline, MemKind::Hbm, &wl)
            .unwrap();
    let (fpga, _) = exec2d::simulate_mesh_2d(&dev(), &ds, &[Poisson2D], &m, iters);
    assert!(norms::bit_equal(seq.as_slice(), fpga.as_slice()), "fpga vs seq");
}

#[test]
fn jacobi_three_way_agreement() {
    let m = Mesh3D::<f32>::random(18, 14, 11, 9, -2.0, 2.0);
    let k = Jacobi3D::with_coefficients([0.05, 0.1, 0.15, 0.3, 0.15, 0.1, 0.15]);
    let iters = 9;

    let seq = reference::run_3d(&k, &m, iters);
    let par = parallel::par_run_3d(&k, &m, iters);
    assert!(norms::bit_equal(seq.as_slice(), par.as_slice()));

    let wl = Workload::D3 { nx: 18, ny: 14, nz: 11, batch: 1 };
    let ds =
        synthesize(&dev(), &StencilSpec::jacobi(), 8, 2, ExecMode::Baseline, MemKind::Hbm, &wl)
            .unwrap();
    let (fpga, _) = exec3d::simulate_mesh_3d(&dev(), &ds, &[k], &m, iters);
    assert!(norms::bit_equal(seq.as_slice(), fpga.as_slice()));
}

#[test]
fn rtm_three_way_agreement() {
    let (y, rho, mu) = rtm::demo_workload(15, 14, 13);
    let prm = RtmParams { dt: 2e-3, sigma: 0.03, sigma2: 0.015 };
    let iters = 5;

    let seq = reference::rtm_run(&y, &rho, &mu, prm, iters);
    let par = parallel::par_rtm_run(&y, &rho, &mu, prm, iters);
    assert!(norms::bit_equal(seq.as_slice(), par.as_slice()));

    let wl = Workload::D3 { nx: 15, ny: 14, nz: 13, batch: 1 };
    let ds = synthesize(&dev(), &StencilSpec::rtm(), 1, 3, ExecMode::Baseline, MemKind::Hbm, &wl)
        .unwrap();
    let stages = RtmStage::pipeline(prm);
    let packed = rtm::pack(&y, &rho, &mu);
    let (out_packed, _) = exec3d::simulate_mesh_3d(&dev(), &ds, &stages, &packed, iters);
    let fpga = rtm::unpack(&out_packed);
    assert!(
        norms::bit_equal(seq.as_slice(), fpga.as_slice()),
        "first mismatch: {:?}",
        norms::first_mismatch(seq.as_slice(), fpga.as_slice())
    );
}

#[test]
fn tiled_equals_baseline_equals_reference() {
    // same mesh, three execution strategies, one answer
    let m = Mesh2D::<f32>::random(320, 28, 31, -1.0, 1.0);
    let iters = 12;
    let seq = reference::run_2d(&Poisson2D, &m, iters);

    let wl = Workload::D2 { nx: 320, ny: 28, batch: 1 };
    let base =
        synthesize(&dev(), &StencilSpec::poisson(), 8, 6, ExecMode::Baseline, MemKind::Hbm, &wl)
            .unwrap();
    let (out_b, _) = exec2d::simulate_mesh_2d(&dev(), &base, &[Poisson2D], &m, iters);
    assert!(norms::bit_equal(seq.as_slice(), out_b.as_slice()));

    for tile in [64usize, 96, 160] {
        let tiled = synthesize(
            &dev(),
            &StencilSpec::poisson(),
            8,
            6,
            ExecMode::Tiled1D { tile_m: tile },
            MemKind::Ddr4,
            &wl,
        )
        .unwrap();
        let (out_t, _) = exec2d::simulate_mesh_2d(&dev(), &tiled, &[Poisson2D], &m, iters);
        assert!(
            norms::bit_equal(seq.as_slice(), out_t.as_slice()),
            "tile {tile}: {:?}",
            norms::first_mismatch(seq.as_slice(), out_t.as_slice())
        );
    }
}

#[test]
fn batched_equals_per_mesh_solves_2d_and_3d() {
    let batch2 = Batch2D::<f32>::random(26, 18, 7, 100, -1.0, 1.0);
    let wl2 = Workload::D2 { nx: 26, ny: 18, batch: 7 };
    let d2 = synthesize(
        &dev(),
        &StencilSpec::poisson(),
        8,
        5,
        ExecMode::Batched { b: 7 },
        MemKind::Hbm,
        &wl2,
    )
    .unwrap();
    let (out2, _) = exec2d::simulate_2d(&dev(), &d2, &[Poisson2D], &batch2, 11);
    for i in 0..7 {
        let solo = reference::run_2d(&Poisson2D, &batch2.mesh(i), 11);
        assert!(norms::bit_equal(out2.mesh(i).as_slice(), solo.as_slice()), "mesh {i}");
    }

    let k = Jacobi3D::smoothing();
    let batch3 = Batch3D::<f32>::random(12, 10, 9, 4, 200, -1.0, 1.0);
    let wl3 = Workload::D3 { nx: 12, ny: 10, nz: 9, batch: 4 };
    let d3 = synthesize(
        &dev(),
        &StencilSpec::jacobi(),
        8,
        3,
        ExecMode::Batched { b: 4 },
        MemKind::Hbm,
        &wl3,
    )
    .unwrap();
    let (out3, _) = exec3d::simulate_3d(&dev(), &d3, &[k], &batch3, 7);
    for i in 0..4 {
        let solo = reference::run_3d(&k, &batch3.mesh(i), 7);
        assert!(norms::bit_equal(out3.mesh(i).as_slice(), solo.as_slice()), "mesh {i}");
    }
}

#[test]
fn rtm_energy_decays_under_damping() {
    // physics sanity on the real pipeline: with pure damping (no sources),
    // the wavefield max-norm must not explode over a long run
    let (y, rho, mu) = rtm::demo_workload(12, 12, 12);
    let prm = RtmParams::default();
    let out = reference::rtm_run(&y, &rho, &mu, prm, 200);
    assert!(out.all_finite());
    let n0 = norms::max_norm_3d(&y);
    let n1 = norms::max_norm_3d(&out);
    assert!(n1 < n0 * 3.0, "wavefield grew suspiciously: {n0} → {n1}");
}
