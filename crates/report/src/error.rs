//! Typed errors for the run store and report pipeline.

/// Everything that can go wrong loading, building or comparing reports.
#[derive(Clone, Debug, PartialEq)]
pub enum ReportError {
    /// Filesystem failure, with the path involved.
    Io {
        /// Path being read or written.
        path: String,
        /// Rendered OS error.
        msg: String,
    },
    /// A record failed to serialize (vendored-serde error surface).
    Encode {
        /// Rendered encoder error.
        msg: String,
    },
    /// A store line failed to parse as JSON.
    Parse {
        /// 1-based line number in the store.
        line: usize,
        /// Rendered parser error.
        msg: String,
    },
    /// A record declared a schema this build does not speak.
    Schema {
        /// 1-based line number in the store.
        line: usize,
        /// Schema tag found on the record.
        found: String,
        /// Schema tag this build expects.
        expected: &'static str,
    },
    /// A baseline document is not a report of the expected schema.
    Baseline {
        /// What was wrong with it.
        msg: String,
    },
}

impl ReportError {
    /// Wrap an I/O error with its path.
    pub fn io(path: &std::path::Path, e: std::io::Error) -> Self {
        ReportError::Io { path: path.display().to_string(), msg: e.to_string() }
    }
}

impl core::fmt::Display for ReportError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ReportError::Io { path, msg } => write!(f, "{path}: {msg}"),
            ReportError::Encode { msg } => write!(f, "cannot encode run record: {msg}"),
            ReportError::Parse { line, msg } => {
                write!(f, "run store line {line}: {msg}")
            }
            ReportError::Schema { line, found, expected } => write!(
                f,
                "run store line {line}: record schema `{found}` (this build reads `{expected}`)"
            ),
            ReportError::Baseline { msg } => write!(f, "baseline: {msg}"),
        }
    }
}

impl std::error::Error for ReportError {}
