//! Chrome trace-event JSON exporter.
//!
//! Produces the `{"traceEvents": [...]}` object format understood by
//! Perfetto and `chrome://tracing`. Each recorder track becomes one
//! trace "thread" (named via `"M"` metadata events), spans become
//! complete (`"X"`) events, point events become instants (`"i"`), and
//! gauges become counter (`"C"`) events. Timestamps are microseconds of
//! modelled wall time: `cycle / cycles_per_us`.

use crate::recorder::Recorder;
use serde::Value;

const PID: u64 = 1;

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn us(cycle: u64, cycles_per_us: f64) -> Value {
    Value::F64(cycle as f64 / cycles_per_us)
}

/// Build the trace as a JSON value tree.
pub fn chrome_trace(rec: &Recorder) -> Value {
    let cpu = rec.cycles_per_us();
    let mut events: Vec<Value> = Vec::new();

    // Process name, then one named thread per track.
    events.push(obj(vec![
        ("ph", Value::String("M".into())),
        ("pid", Value::U64(PID)),
        ("tid", Value::U64(0)),
        ("name", Value::String("process_name".into())),
        ("args", obj(vec![("name", Value::String("sfstencil simulator".into()))])),
    ]));
    for (i, name) in rec.track_names().iter().enumerate() {
        events.push(obj(vec![
            ("ph", Value::String("M".into())),
            ("pid", Value::U64(PID)),
            ("tid", Value::U64(i as u64 + 1)),
            ("name", Value::String("thread_name".into())),
            ("args", obj(vec![("name", Value::String(name.clone()))])),
        ]));
    }

    for s in rec.spans() {
        let mut args: Vec<(String, Value)> = vec![
            ("start_cycle".to_string(), Value::U64(s.start_cycle)),
            ("end_cycle".to_string(), Value::U64(s.end_cycle)),
        ];
        args.extend(s.args.iter().cloned());
        events.push(obj(vec![
            ("ph", Value::String("X".into())),
            ("pid", Value::U64(PID)),
            ("tid", Value::U64(s.track.0 as u64 + 1)),
            ("name", Value::String(s.name.clone())),
            ("ts", us(s.start_cycle, cpu)),
            ("dur", Value::F64(s.duration() as f64 / cpu)),
            ("args", Value::Object(args)),
        ]));
    }

    for i in rec.instants() {
        events.push(obj(vec![
            ("ph", Value::String("i".into())),
            ("s", Value::String("t".into())),
            ("pid", Value::U64(PID)),
            ("tid", Value::U64(i.track.0 as u64 + 1)),
            ("name", Value::String(i.name.clone())),
            ("ts", us(i.cycle, cpu)),
        ]));
    }

    for g in rec.gauges() {
        events.push(obj(vec![
            ("ph", Value::String("C".into())),
            ("pid", Value::U64(PID)),
            ("tid", Value::U64(g.track.0 as u64 + 1)),
            ("name", Value::String(g.name.clone())),
            ("ts", us(g.cycle, cpu)),
            ("args", obj(vec![("value", Value::F64(g.value))])),
        ]));
    }

    let mut top = vec![
        ("traceEvents".to_string(), Value::Array(events)),
        ("displayTimeUnit".to_string(), Value::String("ms".to_string())),
    ];
    let meta: Vec<(String, Value)> = rec
        .meta()
        .iter()
        .cloned()
        .chain(std::iter::once(("cycles_per_us".to_string(), Value::F64(cpu))))
        .collect();
    top.push(("otherData".to_string(), Value::Object(meta)));
    Value::Object(top)
}

/// Serialize the trace to a JSON string (compact — traces get large).
/// Serializing an already-built [`Value`] tree is infallible, so the error
/// arm degrades to an empty-but-valid document rather than panicking.
pub fn to_chrome_json(rec: &Recorder) -> String {
    serde_json::to_string(&chrome_trace(rec)).unwrap_or_else(|_| String::from("{}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    fn sample_recorder() -> Recorder {
        let mut r = Recorder::enabled(300.0);
        let t = r.track("stage:0");
        let f = r.track("fifo:0->1");
        r.span(t, "pass 0", 0, 300);
        r.instant(t, "primed", 10);
        r.gauge(f, "occupancy", 150, 4.0);
        r.set_meta("app", Value::String("poisson".into()));
        r
    }

    #[test]
    fn trace_has_required_event_fields() {
        let v = chrome_trace(&sample_recorder());
        let events = v.get("traceEvents").and_then(|e| e.as_array()).unwrap();
        assert!(!events.is_empty());
        for e in events {
            let o = e.as_object().unwrap();
            for key in ["ph", "pid", "tid", "name"] {
                // "C"/"i" events always carry name too in this exporter.
                if key == "name" && o.iter().any(|(k, _)| k == "s") {
                    continue;
                }
                assert!(o.iter().any(|(k, _)| k == key), "missing {key}: {o:?}");
            }
        }
    }

    #[test]
    fn track_names_become_thread_metadata() {
        let v = chrome_trace(&sample_recorder());
        let s = serde_json::to_string(&v).unwrap();
        assert!(s.contains("thread_name"));
        assert!(s.contains("stage:0"));
        assert!(s.contains("fifo:0-\\u003e1") || s.contains("fifo:0->1"));
    }

    #[test]
    fn timestamps_are_cycle_scaled_microseconds() {
        let r = sample_recorder();
        let v = chrome_trace(&r);
        let events = v.get("traceEvents").and_then(|e| e.as_array()).unwrap();
        let span =
            events.iter().find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X")).unwrap();
        // 300 cycles at 300 cycles/us = 1 us.
        assert!((span.get("dur").unwrap().as_f64().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn json_parses_back() {
        let s = to_chrome_json(&sample_recorder());
        let v: Value = serde_json::parse_value(&s).unwrap();
        assert!(v.get("traceEvents").is_some());
        assert!(v.get("otherData").and_then(|m| m.get("app")).is_some());
    }
}
