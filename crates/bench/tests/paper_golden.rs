//! Golden regression pins for the paper's headline configurations.
//!
//! Pins the analytic model's Extended-level prediction (cycles, runtime,
//! bandwidth) for the three flagship designs — Poisson 400² V=8 p=60,
//! Jacobi 300³ V=8 p=29, RTM 64³ V=1 p=3 — in
//! `tests/golden/paper_tables.json`, and cross-checks the predictions that
//! correspond to published rows against paper Tables IV–VI within the
//! paper's ±15 % model-accuracy envelope.
//!
//! Cycle counts must match the golden file exactly (the model is
//! closed-form and deterministic); runtime and bandwidth are compared with
//! a tight relative tolerance to absorb decimal round-tripping only.
//! Regenerate after an intentional model change with
//! `SF_UPDATE_GOLDEN=1 cargo test -p sf-bench --test paper_golden`.

use serde::Value;
use sf_bench::paper;
use sf_fpga::design::{synthesize, ExecMode, MemKind, StencilDesign, Workload};
use sf_fpga::FpgaDevice;
use sf_kernels::StencilSpec;
use sf_model::{predict, Prediction, PredictionLevel};

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/paper_tables.json");

/// Relative tolerance for golden float round-trips (not model accuracy).
const FLOAT_RTOL: f64 = 1e-9;

/// The paper's model-accuracy envelope (±15 %).
const PAPER_TOL_PCT: f64 = 15.0;

struct Pin {
    /// Stable JSON key.
    key: &'static str,
    design: StencilDesign,
    wl: Workload,
    niter: u64,
    /// Published average bandwidth (GB/s) when the configuration is a row
    /// of Tables IV–V; `None` pins the prediction without a paper
    /// cross-check. RTM 64³ is the paper's simulation mesh, not a Table VI
    /// row; RTM 50³ *is* a Table VI row (165 GB/s) but the paper's
    /// bandwidth there counts every RTM field array per iteration while
    /// this model counts the packed cell stream, so only the regression
    /// pin is asserted.
    paper_gbs: Option<f64>,
}

fn pins() -> Vec<Pin> {
    let dev = FpgaDevice::u280();
    let mk = |spec: StencilSpec, v: usize, p: usize, wl: Workload| {
        synthesize(&dev, &spec, v, p, ExecMode::Baseline, MemKind::Hbm, &wl)
            .expect("paper flagship design must synthesize")
    };
    let poisson_wl = Workload::D2 { nx: 400, ny: 400, batch: 1 };
    let jacobi_wl = Workload::D3 { nx: 300, ny: 300, nz: 300, batch: 1 };
    let rtm_wl = Workload::D3 { nx: 64, ny: 64, nz: 64, batch: 1 };
    let rtm50_wl = Workload::D3 { nx: 50, ny: 50, nz: 50, batch: 1 };
    // Published rows: Table IV 400×400 base = 735 GB/s, Table V n=300
    // base = 403 GB/s.
    let table4 = paper::TABLE4_BASE
        .iter()
        .find(|r| r.0 == 400 && r.1 == 400)
        .map(|r| r.2)
        .expect("Table IV has the 400x400 row");
    let table5 = paper::TABLE5_BASE
        .iter()
        .find(|r| r.0 == 300)
        .map(|r| r.1)
        .expect("Table V has the n=300 row");
    vec![
        Pin {
            key: "poisson2d_400x400_v8_p60",
            design: mk(StencilSpec::poisson(), 8, 60, poisson_wl),
            wl: poisson_wl,
            niter: paper::iters::POISSON,
            paper_gbs: Some(table4),
        },
        Pin {
            key: "jacobi3d_300x300x300_v8_p29",
            design: mk(StencilSpec::jacobi(), 8, 29, jacobi_wl),
            wl: jacobi_wl,
            niter: paper::iters::JACOBI,
            paper_gbs: Some(table5),
        },
        Pin {
            key: "rtm3d_64x64x64_v1_p3",
            design: mk(StencilSpec::rtm(), 1, 3, rtm_wl),
            wl: rtm_wl,
            niter: paper::iters::RTM,
            paper_gbs: None,
        },
        Pin {
            key: "rtm3d_50x50x50_v1_p3",
            design: mk(StencilSpec::rtm(), 1, 3, rtm50_wl),
            wl: rtm50_wl,
            niter: paper::iters::RTM,
            paper_gbs: None,
        },
    ]
}

fn predict_pin(pin: &Pin) -> Prediction {
    predict(&FpgaDevice::u280(), &pin.design, &pin.wl, pin.niter, PredictionLevel::Extended)
        .expect("flagship prediction must succeed")
}

fn render_golden(rows: &[(&'static str, Prediction)]) -> String {
    let mut s = String::from("{\n");
    for (i, (key, p)) in rows.iter().enumerate() {
        s.push_str(&format!(
            "  \"{key}\": {{\n    \"cycles\": {},\n    \"runtime_s\": {},\n    \"bandwidth_gbs\": {}\n  }}{}\n",
            p.cycles,
            p.runtime_s,
            p.bandwidth_gbs,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push('}');
    s.push('\n');
    s
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= FLOAT_RTOL * b.abs().max(1.0)
}

#[test]
fn flagship_predictions_match_golden_file() {
    let rows: Vec<(&'static str, Prediction)> =
        pins().iter().map(|pin| (pin.key, predict_pin(pin))).collect();
    if std::env::var_os("SF_UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, render_golden(&rows)).unwrap();
    }
    let golden: Value = serde_json::from_str(
        &std::fs::read_to_string(GOLDEN_PATH)
            .expect("golden file present; regenerate with SF_UPDATE_GOLDEN=1"),
    )
    .unwrap();
    for (key, p) in &rows {
        let row = golden.get(key).unwrap_or_else(|| panic!("golden file missing row '{key}'"));
        assert_eq!(
            row.get("cycles").and_then(Value::as_u64),
            Some(p.cycles),
            "{key}: predicted cycles drifted from the golden pin \
             (SF_UPDATE_GOLDEN=1 to accept an intentional model change)"
        );
        let runtime = row.get("runtime_s").and_then(Value::as_f64).unwrap();
        assert!(close(p.runtime_s, runtime), "{key}: runtime {} != pinned {runtime}", p.runtime_s);
        let bw = row.get("bandwidth_gbs").and_then(Value::as_f64).unwrap();
        assert!(close(p.bandwidth_gbs, bw), "{key}: bandwidth {} != pinned {bw}", p.bandwidth_gbs);
    }
}

#[test]
fn flagship_predictions_within_paper_envelope() {
    for pin in pins() {
        let Some(paper_gbs) = pin.paper_gbs else { continue };
        let p = predict_pin(&pin);
        let delta_pct = 100.0 * (p.bandwidth_gbs - paper_gbs) / paper_gbs;
        assert!(
            delta_pct.abs() <= PAPER_TOL_PCT,
            "{}: predicted {:.1} GB/s vs paper {paper_gbs:.1} GB/s ({delta_pct:+.1} %) \
             exceeds the +/-{PAPER_TOL_PCT} % envelope",
            pin.key,
            p.bandwidth_gbs
        );
    }
}

#[test]
fn golden_file_is_committed_and_complete() {
    let golden: Value =
        serde_json::from_str(&std::fs::read_to_string(GOLDEN_PATH).unwrap()).unwrap();
    for pin in pins() {
        let row = golden.get(pin.key).unwrap_or_else(|| panic!("missing row '{}'", pin.key));
        for field in ["cycles", "runtime_s", "bandwidth_gbs"] {
            assert!(row.get(field).is_some(), "{}: missing field '{field}'", pin.key);
        }
    }
}
