//! Sharded-execution scaling: the same Poisson solve streamed on 1, 2
//! and 4 simulated devices, plus the sharded cycle-planner itself.
//!
//! Sharding is bit-exact (the conformance suite asserts it), so what is
//! under the stopwatch is the software cost of the slab decomposition:
//! per-device extended streams (owned slab + halos) against the
//! single-device baseline, and the per-pass gather/exchange at each
//! barrier. Devices are simulated sequentially within a pass when
//! `jobs = 1`, so near-flat wall-clock across counts is the expected
//! shape — the halo re-reads are the measured overhead. `BENCH_pr10.json`
//! archives the `--output-format bencher` rows so later PRs regress
//! against them.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sf_fpga::design::{synthesize, ExecMode, MemKind, Workload};
use sf_fpga::{ExecEngine, FpgaDevice, Recorder};
use sf_kernels::{Poisson2D, StencilSpec};
use sf_mesh::Batch2D;
use sf_multi::{sharded_plan, simulate_batch_2d_sharded_exec, LinkModel, MultiConfig};

const SEED: u64 = 42;
const DEVICE_COUNTS: [usize; 3] = [1, 2, 4];

/// Poisson 2D at validation scale, sharded across 1/2/4 devices: the
/// halo re-read overhead of the slab decomposition under the stopwatch.
fn bench_sharded_poisson_2d(c: &mut Criterion) {
    let dev = FpgaDevice::u280();
    let (nx, ny, niter) = (256usize, 400usize, 10usize);
    let wl = Workload::D2 { nx, ny, batch: 1 };
    let ds = synthesize(&dev, &StencilSpec::poisson(), 8, 4, ExecMode::Baseline, MemKind::Hbm, &wl)
        .unwrap();
    let input = Batch2D::<f32>::random(nx, ny, 1, SEED, -1.0, 1.0);
    let mut g = c.benchmark_group("multi_device_poisson2d_256x400");
    g.sample_size(10);
    g.throughput(Throughput::Elements((nx * ny * niter) as u64));
    for devices in DEVICE_COUNTS {
        let cfg = MultiConfig::new(devices);
        g.bench_with_input(BenchmarkId::new("devices", devices), &cfg, |b, cfg| {
            b.iter(|| {
                simulate_batch_2d_sharded_exec(
                    ExecEngine::Fast,
                    &dev,
                    &ds,
                    &[Poisson2D],
                    &input,
                    niter,
                    cfg,
                    1,
                    &mut Recorder::disabled(),
                )
                .unwrap()
            })
        });
    }
    g.finish();
}

/// The analytic sharded planner on a paper-scale solve: pure model math
/// (no numerics), swept over device counts and both link classes.
fn bench_sharded_plan(c: &mut Criterion) {
    let dev = FpgaDevice::u280();
    let wl = Workload::D2 { nx: 400, ny: 400, batch: 1 };
    let ds = synthesize(&dev, &StencilSpec::poisson(), 8, 4, ExecMode::Baseline, MemKind::Hbm, &wl)
        .unwrap();
    let mut g = c.benchmark_group("multi_device_plan_poisson2d_400x400");
    g.sample_size(10);
    for (label, link) in [("aurora", LinkModel::aurora()), ("pcie", LinkModel::pcie())] {
        for devices in DEVICE_COUNTS {
            let cfg = MultiConfig { devices, link };
            g.bench_with_input(BenchmarkId::new(label, devices), &cfg, |b, cfg| {
                b.iter(|| sharded_plan(&dev, &ds, &wl, 60_000, cfg).unwrap())
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_sharded_poisson_2d, bench_sharded_plan);
criterion_main!(benches);
