//! Roofline attribution: place a measured run against the paper's
//! analytic ceilings and say where the gap went.
//!
//! Three ceilings bound any run of the streaming architecture:
//!
//! * **bandwidth** (eq. 4) — `V_max = ⌊BW / (2·f·k)⌋`; a design at
//!   `V = V_max` cannot be fed faster by the external memory. Cycles the
//!   telemetry attributes to [`StallClass::Memory`] are losses against
//!   this ceiling.
//! * **DSP** (eq. 6) — `p_dsp = ⌊util·DSP / (V·G_dsp)⌋`; a design at
//!   `p = p_dsp` has no fabric left to unroll further. Cycles attributed
//!   to [`StallClass::Compute`] are bounded by this ceiling (pipeline
//!   depth and initiation interval live in the datapath).
//! * **throughput for tiles** (eq. 12) — `p_max = M/(3·D)`; tiled designs
//!   past it lose more to halo redundancy than the extra unroll returns.
//!   [`StallClass::Backpressure`] losses (full FIFOs between stages) show
//!   up as the residual this ceiling predicts.
//!
//! The *ideal cycle floor* is the paper's cycle model itself (eq. 2/3)
//! evaluated at the run's own design point: the best the schedule could
//! do with perfect memory and no inter-stage stalls. The measured-minus-
//! ideal gap is then split across stall classes using the run's recorded
//! attribution fractions.
//!
//! [`StallClass::Memory`]: sf_telemetry::StallClass::Memory
//! [`StallClass::Compute`]: sf_telemetry::StallClass::Compute
//! [`StallClass::Backpressure`]: sf_telemetry::StallClass::Backpressure

use crate::record::{spec_for_slug, RunRecord};
use serde::{Deserialize, Serialize};
use sf_fpga::FpgaDevice;
use sf_model::equations;
use sf_telemetry::{StallBreakdown, StallClass};

/// The analytic ceilings for one design point (see module docs).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Ceilings {
    /// Eq. 4: maximum bandwidth-sustainable vectorization at this clock.
    pub v_max_bandwidth: u64,
    /// Eq. 6: maximum DSP-sustainable unroll at this V.
    pub p_dsp: u64,
    /// Eq. 12: throughput-optimal unroll for the run's tile (tiled modes
    /// only).
    pub p_max_tile: Option<f64>,
    /// The run's V sits at (or beyond) the bandwidth ceiling.
    pub at_bandwidth_ceiling: bool,
    /// The run's p sits at (or beyond) the DSP ceiling.
    pub at_dsp_ceiling: bool,
}

/// How the measured-vs-ideal gap splits across stall classes, in percent
/// of the gap. All zero (with `attributed_cycles == 0`) when the run
/// recorded no stall telemetry.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GapAttribution {
    /// Share of the gap on the datapath (eq. 6 side), percent.
    pub compute_pct: f64,
    /// Share waiting on external memory (eq. 4 side), percent.
    pub memory_pct: f64,
    /// Share blocked on full inter-stage FIFOs (eq. 12 residual), percent.
    pub backpressure_pct: f64,
    /// Share exposed on the inter-device halo exchange (multi-device runs
    /// whose link cost exceeds the interior-compute overlap), percent.
    pub exchange_pct: f64,
    /// Total stall cycles the split was derived from.
    pub attributed_cycles: u64,
}

/// One run's position against the ceilings.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Roofline {
    /// Eq. 2/3 cycle floor at the run's own (V, p).
    pub ideal_cycles: u64,
    /// What the simulation measured.
    pub measured_cycles: u64,
    /// `measured - ideal`, saturating at zero (a measurement below the
    /// floor means the model's floor is conservative, not negative loss).
    pub gap_cycles: u64,
    /// Gap as a percentage of the ideal floor; `None` when the floor is
    /// zero (degenerate run).
    pub gap_pct: Option<f64>,
    /// Stall class holding the most attributed cycles — the binding
    /// resource, named for humans.
    pub bound: String,
    /// The analytic ceilings (eqs. 4, 6, 12).
    pub ceilings: Ceilings,
    /// Gap split across stall classes.
    pub attribution: GapAttribution,
}

/// Percentage helper that can never produce NaN: zero denominators yield
/// zero.
fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        return 0.0;
    }
    part as f64 / whole as f64 * 100.0
}

/// Build the gap attribution from a recorded stall breakdown.
fn attribute(stalls: &StallBreakdown) -> GapAttribution {
    let total = stalls.total();
    GapAttribution {
        compute_pct: pct(stalls.cycles(StallClass::Compute), total),
        memory_pct: pct(stalls.cycles(StallClass::Memory), total),
        backpressure_pct: pct(stalls.cycles(StallClass::Backpressure), total),
        exchange_pct: pct(stalls.cycles(StallClass::Exchange), total),
        attributed_cycles: total,
    }
}

/// Compute the roofline position for one measured run (or an aggregate of
/// runs sharing a config: pass the aggregated `measured` median and the
/// summed stall breakdown).
///
/// Returns `None` when the record has no measurement, names an app with
/// no analytic spec (custom stencils), or lacks mesh dimensions.
pub fn analyze(
    dev: &FpgaDevice,
    rec: &RunRecord,
    measured_cycles: u64,
    stalls: &StallBreakdown,
) -> Option<Roofline> {
    if measured_cycles == 0 {
        return None;
    }
    let spec = spec_for_slug(&rec.app)?;
    let d_eff = (spec.order * spec.stages) as u64;
    let (v, p) = (rec.v.max(1), rec.p.max(1));
    let ideal_cycles = match rec.dims.as_slice() {
        [nx, ny] => equations::clks_2d(rec.niter, p, *nx, rec.batch.max(1) * ny, v, d_eff),
        [nx, ny, nz] => equations::clks_3d(rec.niter, p, *nx, *ny, rec.batch.max(1) * nz, v, d_eff),
        _ => return None,
    };

    let mem = match rec.mem.as_str() {
        "ddr4" => &dev.ddr4,
        _ => &dev.hbm,
    };
    let freq_hz = if rec.freq_mhz > 0.0 { rec.freq_mhz * 1e6 } else { dev.default_clock_hz };
    let v_max = equations::v_max(mem.channel_bw, mem.channels, freq_hz, spec.elem_bytes) as u64;
    let p_dsp =
        equations::p_dsp(dev.dsp_total, dev.dsp_util_target, v as usize, spec.gdsp()) as u64;
    let p_max_tile = rec.tile_m.map(|m| equations::p_max_for_tile(m as f64, d_eff as f64));

    let gap_cycles = measured_cycles.saturating_sub(ideal_cycles);
    let gap_pct = (ideal_cycles > 0).then(|| gap_cycles as f64 / ideal_cycles as f64 * 100.0);

    Some(Roofline {
        ideal_cycles,
        measured_cycles,
        gap_cycles,
        gap_pct,
        bound: format!("{:?}", stalls.dominant()),
        ceilings: Ceilings {
            v_max_bandwidth: v_max,
            p_dsp,
            p_max_tile,
            at_bandwidth_ceiling: rec.v >= v_max && v_max > 0,
            at_dsp_ceiling: rec.p >= p_dsp && p_dsp > 0,
        },
        attribution: attribute(stalls),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{RunKind, RunRecord};

    fn poisson_record() -> RunRecord {
        let mut r = RunRecord::empty(RunKind::Profile, "poisson2d");
        r.dims = vec![200, 100];
        r.niter = 60_000;
        r.v = 8;
        r.p = 60;
        r.mem = "hbm".into();
        r.freq_mhz = 300.0;
        r.measured_cycles = 4_100_000;
        r
    }

    #[test]
    fn ideal_floor_matches_eq2() {
        let dev = FpgaDevice::u280();
        let rec = poisson_record();
        let stalls = StallBreakdown { compute_cycles: 90, memory_cycles: 10, ..Default::default() };
        let rl = analyze(&dev, &rec, rec.measured_cycles, &stalls).expect("roofline");
        // eq. 2 worked example: 60 000 iters, p=60, 200×100, V=8, D=2
        assert_eq!(rl.ideal_cycles, 4_000_000);
        assert_eq!(rl.gap_cycles, 100_000);
        let gap = rl.gap_pct.expect("finite gap");
        assert!((gap - 2.5).abs() < 1e-9, "{gap}");
        assert_eq!(rl.bound, "Compute");
        assert!((rl.attribution.compute_pct - 90.0).abs() < 1e-9);
        assert!((rl.attribution.memory_pct - 10.0).abs() < 1e-9);
    }

    #[test]
    fn ceilings_match_the_paper_table() {
        let dev = FpgaDevice::u280();
        let rec = poisson_record();
        let rl =
            analyze(&dev, &rec, rec.measured_cycles, &StallBreakdown::default()).expect("roofline");
        // eq. 6 at V=8: ⌊0.9·8490/(8·14)⌋ = 68 — p=60 is under the ceiling
        assert_eq!(rl.ceilings.p_dsp, 68);
        assert!(!rl.ceilings.at_dsp_ceiling);
        // full 32-channel HBM at 300 MHz feeds far more than V=8
        assert!(rl.ceilings.v_max_bandwidth > 8);
        assert!(!rl.ceilings.at_bandwidth_ceiling);
        assert_eq!(rl.ceilings.p_max_tile, None);
    }

    #[test]
    fn tiled_record_reports_eq12_ceiling() {
        let dev = FpgaDevice::u280();
        let mut rec = poisson_record();
        rec.tile_m = Some(8192);
        rec.mode = "Tiled1D { tile_m: 8192 }".into();
        let rl =
            analyze(&dev, &rec, rec.measured_cycles, &StallBreakdown::default()).expect("roofline");
        let p_max = rl.ceilings.p_max_tile.expect("tiled ceiling");
        assert!((p_max - 8192.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn unmeasured_or_custom_records_have_no_roofline() {
        let dev = FpgaDevice::u280();
        let mut rec = poisson_record();
        assert!(analyze(&dev, &rec, 0, &StallBreakdown::default()).is_none());
        rec.app = "custom".into();
        assert!(analyze(&dev, &rec, 100, &StallBreakdown::default()).is_none());
        let mut no_dims = poisson_record();
        no_dims.dims.clear();
        assert!(analyze(&dev, &no_dims, 100, &StallBreakdown::default()).is_none());
    }

    #[test]
    fn zero_stall_telemetry_is_nan_safe() {
        let dev = FpgaDevice::u280();
        let rec = poisson_record();
        let rl =
            analyze(&dev, &rec, rec.measured_cycles, &StallBreakdown::default()).expect("roofline");
        assert_eq!(rl.attribution.attributed_cycles, 0);
        for f in [
            rl.attribution.compute_pct,
            rl.attribution.memory_pct,
            rl.attribution.backpressure_pct,
            rl.attribution.exchange_pct,
        ] {
            assert_eq!(f, 0.0);
            assert!(!f.is_nan());
        }
    }

    #[test]
    fn exchange_stalls_attribute_a_communication_bound_run() {
        let dev = FpgaDevice::u280();
        let rec = poisson_record();
        let stalls =
            StallBreakdown { compute_cycles: 25, exchange_cycles: 75, ..Default::default() };
        let rl = analyze(&dev, &rec, rec.measured_cycles, &stalls).expect("roofline");
        assert!((rl.attribution.exchange_pct - 75.0).abs() < 1e-9);
        assert!((rl.attribution.compute_pct - 25.0).abs() < 1e-9);
        assert_eq!(rl.bound, "Exchange", "exchange must be nameable as the binding resource");
    }
}
