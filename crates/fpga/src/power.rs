//! FPGA power and energy model (the simulator's `xbutil`).
//!
//! The paper measures board power with `xbutil`: ~70 W for Poisson and RTM,
//! ~90 W for the Jacobi baseline, ~70 W for Jacobi tiled. We model average
//! power as a base (static + shell) plus activity terms proportional to the
//! utilization of each resource class and the number of active memory
//! channels, calibrated to those observations (each application lands within
//! ~10 % of the paper's reading; the *energy ratios* vs the GPU — the
//! paper's headline claim — are insensitive at this accuracy).

use crate::design::StencilDesign;
use crate::device::FpgaDevice;

/// Static + shell power (W).
const P_BASE_W: f64 = 22.0;
/// Dynamic power at 100 % DSP utilization (W).
const P_DSP_W: f64 = 56.0;
/// Dynamic power at 100 % URAM utilization (W).
const P_URAM_W: f64 = 12.0;
/// Dynamic power at 100 % BRAM utilization (W).
const P_BRAM_W: f64 = 5.0;
/// Power per active memory channel (W).
const P_CHANNEL_W: f64 = 0.5;

/// Average board power for a running design, in watts.
pub fn fpga_power_w(dev: &FpgaDevice, design: &StencilDesign) -> f64 {
    let u = &design.resources;
    // scale dynamic parts with the achieved clock relative to the 300 MHz target
    let fscale = design.freq_hz / dev.default_clock_hz;
    P_BASE_W
        + fscale
            * (P_DSP_W * u.dsp_util(dev)
                + P_URAM_W * u.uram_util(dev)
                + P_BRAM_W * u.bram_util(dev))
        + P_CHANNEL_W * (design.read_channels + design.write_channels) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::{synthesize, ExecMode, MemKind, Workload};
    use sf_kernels::StencilSpec;

    fn dev() -> FpgaDevice {
        FpgaDevice::u280()
    }

    #[test]
    fn poisson_power_near_70w() {
        let d = dev();
        let wl = Workload::D2 { nx: 400, ny: 400, batch: 1 };
        let ds =
            synthesize(&d, &StencilSpec::poisson(), 8, 60, ExecMode::Baseline, MemKind::Hbm, &wl)
                .unwrap();
        let p = fpga_power_w(&d, &ds);
        assert!((55.0..85.0).contains(&p), "Poisson power {p} W vs paper ~70 W");
    }

    #[test]
    fn jacobi_baseline_power_near_90w() {
        let d = dev();
        let wl = Workload::D3 { nx: 300, ny: 300, nz: 300, batch: 1 };
        let ds =
            synthesize(&d, &StencilSpec::jacobi(), 8, 29, ExecMode::Baseline, MemKind::Hbm, &wl)
                .unwrap();
        let p = fpga_power_w(&d, &ds);
        assert!((72.0..100.0).contains(&p), "Jacobi power {p} W vs paper ~90 W");
    }

    #[test]
    fn rtm_power_near_70w() {
        let d = dev();
        let wl = Workload::D3 { nx: 64, ny: 64, nz: 64, batch: 1 };
        let ds = synthesize(&d, &StencilSpec::rtm(), 1, 3, ExecMode::Baseline, MemKind::Hbm, &wl)
            .unwrap();
        let p = fpga_power_w(&d, &ds);
        assert!((58.0..85.0).contains(&p), "RTM power {p} W vs paper ~70 W");
    }

    #[test]
    fn jacobi_tiled_cooler_than_baseline() {
        // paper: 90 W baseline vs ~70 W tiled
        let d = dev();
        let wb = Workload::D3 { nx: 300, ny: 300, nz: 300, batch: 1 };
        let base =
            synthesize(&d, &StencilSpec::jacobi(), 8, 29, ExecMode::Baseline, MemKind::Hbm, &wb)
                .unwrap();
        let wt = Workload::D3 { nx: 600, ny: 600, nz: 600, batch: 1 };
        let tiled = synthesize(
            &d,
            &StencilSpec::jacobi(),
            64,
            3,
            ExecMode::Tiled2D { tile_m: 640, tile_n: 640 },
            MemKind::Hbm,
            &wt,
        )
        .unwrap();
        assert!(fpga_power_w(&d, &tiled) < fpga_power_w(&d, &base));
    }
}
