//! Footprint + op-tally extraction by probe execution.
//!
//! One run of the kernel's generic update on the counting domain, through a
//! recording accessor ([`sf_kernels::probe`]), yields both the true access
//! footprint (every offset the code reads) and the op tally (every operator
//! the code executes). Both come from the *real* kernel math — not from the
//! hand-written [`sf_kernels::StencilSpec`] declarations they are checked
//! against.

use crate::count::{count_ops, CountingValue};
use crate::tally::OpTally;
use sf_kernels::probe;
use sf_kernels::rtm::{RtmParams, RtmStage, RTM_PACKED_LANES};
use sf_kernels::{AbstractOp2D, AbstractOp3D};
use std::collections::BTreeSet;

/// The extracted truth about one kernel's access/arithmetic behaviour.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Footprint {
    /// Offsets read, unified to 3D (`dz = 0` for 2D kernels).
    pub offsets: BTreeSet<(i32, i32, i32)>,
    /// Chebyshev radius of the read set — the window reach the kernel
    /// actually needs.
    pub radius: usize,
    /// Ops executed by one update (all fused stages for RTM).
    pub tally: OpTally,
}

/// Probe a 2D kernel: one counted, recorded execution of its update.
pub fn extract_2d<K: AbstractOp2D + ?Sized>(op: &K) -> Footprint {
    let ((_, reads), tally) = count_ops(|| probe::record_2d(op, |_, _| CountingValue));
    let radius = probe::radius_2d(&reads);
    let offsets = reads.into_iter().map(|(dx, dy)| (dx, dy, 0)).collect();
    Footprint { offsets, radius, tally }
}

/// Probe a 3D kernel.
pub fn extract_3d<K: AbstractOp3D + ?Sized>(op: &K) -> Footprint {
    let ((_, reads), tally) = count_ops(|| probe::record_3d(op, |_, _, _| CountingValue));
    let radius = probe::radius_3d(&reads);
    Footprint { offsets: reads, radius, tally }
}

/// Probe the full fused RTM pipeline: union of the four stages' footprints,
/// sum of their tallies — the counted dual of
/// [`sf_kernels::rtm::fused_op_count`].
pub fn extract_rtm(params: RtmParams) -> Footprint {
    let mut offsets: BTreeSet<(i32, i32, i32)> = BTreeSet::new();
    let mut tally = OpTally::default();
    for s in 1..=4 {
        let stage = RtmStage::new(s, params);
        let ((_, reads), t) = count_ops(|| {
            probe::record_rtm_stage(&stage, |_, _, _| [CountingValue; RTM_PACKED_LANES])
        });
        offsets.extend(reads);
        tally = tally.plus(t);
    }
    let radius = probe::radius_3d(&offsets);
    Footprint { offsets, radius, tally }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sf_kernels::{Jacobi3D, Poisson2D, StarStencil2D};

    #[test]
    fn poisson_truth_matches_declaration() {
        let f = extract_2d(&Poisson2D);
        assert_eq!(f.radius, 1);
        assert_eq!(f.offsets.len(), 5);
        assert_eq!(f.tally, OpTally { adds: 4, muls: 2, divs: 0 });
        assert_eq!(f.tally.as_op_count(), Poisson2D::op_count());
    }

    #[test]
    fn jacobi_truth_matches_declaration() {
        let f = extract_3d(&Jacobi3D::smoothing());
        assert_eq!(f.radius, 1);
        assert_eq!(f.offsets.len(), 7);
        assert_eq!(f.tally.as_op_count(), Jacobi3D::op_count());
    }

    #[test]
    fn star_truth_matches_declaration() {
        let s = StarStencil2D::laplace9_order4(0.1, 1.0);
        let f = extract_2d(&s);
        assert_eq!(f.radius, 2);
        assert_eq!(f.tally.as_op_count(), s.op_count());
    }

    #[test]
    fn rtm_fused_truth_matches_declaration() {
        let f = extract_rtm(RtmParams::default());
        assert_eq!(f.radius, 4);
        // 25-point star + nothing else spatial
        assert_eq!(f.offsets.len(), 25);
        assert_eq!(f.tally.as_op_count(), sf_kernels::rtm::fused_op_count());
    }
}
