//! The 3D stencil-stage abstraction (see [`crate::op2d`] for the 2D twin).

use sf_mesh::Element;

/// One 3D stencil pipeline stage.
pub trait StencilOp3D<T: Element>: Sync {
    /// Stencil radius `r = D/2` (order `D`).
    fn radius(&self) -> usize;

    /// Compute the output element for one interior cell; `at(dx, dy, dz)` is
    /// valid for offsets within the radius.
    fn apply<F: Fn(i32, i32, i32) -> T>(&self, at: F) -> T;

    /// Output for a boundary cell. Default: pass-through.
    fn on_boundary(&self, center: T) -> T {
        center
    }
}

impl<T: Element, K: StencilOp3D<T>> StencilOp3D<T> for &K {
    fn radius(&self) -> usize {
        (**self).radius()
    }

    fn apply<F: Fn(i32, i32, i32) -> T>(&self, at: F) -> T {
        (**self).apply(at)
    }

    fn on_boundary(&self, center: T) -> T {
        (**self).on_boundary(center)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Sum6;

    impl StencilOp3D<f32> for Sum6 {
        fn radius(&self) -> usize {
            1
        }

        fn apply<F: Fn(i32, i32, i32) -> f32>(&self, at: F) -> f32 {
            at(-1, 0, 0) + at(1, 0, 0) + at(0, -1, 0) + at(0, 1, 0) + at(0, 0, -1) + at(0, 0, 1)
        }
    }

    #[test]
    fn trait_plumbing() {
        let k = Sum6;
        let v = k.apply(|dx, dy, dz| (dx + dy + dz) as f32);
        assert_eq!(v, 0.0);
        assert_eq!(k.on_boundary(3.0), 3.0);
    }
}
