//! Structured diagnostics: rule identifiers, severities, and the report a
//! check run produces.
//!
//! Every rule the analyzer applies has a stable [`RuleId`] with a short code
//! (`SFC-…`) and a pointer to the paper equation or mechanism it encodes, so
//! diagnostics are greppable across the CLI, CI logs and JSON output.

use serde::{Deserialize, Serialize};
use sf_fpga::design::{ExecMode, MemKind, Workload};

/// Identity of a design rule. The code is stable across releases; the
/// variant name is what serializes into `--json` output.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RuleId {
    /// `SFC-P01` — `V` and `p` must be positive.
    InvalidParam,
    /// `SFC-P02` — execution mode / stencil / workload dimensionality agree.
    DimsMismatch,
    /// `SFC-W01` — window buffers must cover the stencil reach (`D` stream
    /// units per stage; rows at least as wide as the footprint).
    WindowReach,
    /// `SFC-W02` — quantized window buffers + stream FIFOs must fit the
    /// on-chip BRAM/URAM pools (paper eq. 7).
    WindowCapacity,
    /// `SFC-F01` — every dataflow-graph FIFO must absorb one full AXI burst
    /// while its consumer fills; shallower depths wedge the pipeline (the
    /// static dual of the runtime watchdog).
    FifoDeadlock,
    /// `SFC-F02` — FIFO depth below the two-bursts-of-slack sizing rule:
    /// deadlock-free but the producer stalls on every burst refill.
    FifoSlack,
    /// `SFC-R01` — loop-carried RAW hazard: the unrolled iterative pipeline
    /// keeps `p` iteration passes in flight; the streaming extent must
    /// exceed that or iteration `i+p` would read rows iteration `i` has not
    /// written back.
    RawHazard,
    /// `SFC-T01` — tiles must exceed the halo `p·D_fused` (paper eq. 8).
    TileHalo,
    /// `SFC-T02` — tile larger than the mesh extent it blocks (wasteful;
    /// the executor clamps, redundant halo is still streamed).
    TileHalo2,
    /// `SFC-T03` — tile below the paper's `M ≥ 3·D·p` throughput guideline
    /// (eq. 12): halo overhead dominates the useful work.
    TileThroughput,
    /// `SFC-T04` — tile width not a multiple of `V`: vector lanes straddle
    /// the tile boundary and need realignment logic.
    VectorAlignment,
    /// `SFC-S01` — DSP demand `p·V·G_dsp` exceeds the device (paper eq. 6).
    DspOversubscribed,
    /// `SFC-S02` — estimated LUT/FF demand exceeds the fabric.
    FabricOversubscribed,
    /// `SFC-S03` — the module chain cannot be floorplanned onto the SLRs.
    SlrOverflow,
    /// `SFC-S04` — a single module is too large for one SLR and must span
    /// regions (inter-SLR routing congestion derates the clock).
    SlrSpanning,
    /// `SFC-B01` — vectorization exceeds the memory channels per direction
    /// (paper eq. 4).
    BandwidthChannels,
    /// `SFC-B02` — the workload's ping-pong buffers exceed external memory.
    ExternalCapacity,
    /// `SFC-K01` — the kernel's *extracted* access footprint (probe
    /// execution of the real update function) is not covered by the spec's
    /// declared reach `D/2`: window buffers sized from the spec would feed
    /// the datapath evicted cells.
    KernelFootprint,
    /// `SFC-K02` — the op tally counted by abstract interpretation of the
    /// kernel disagrees with the spec's `flops_per_cell()`/`G_dsp` beyond
    /// tolerance: every eq. 5/6 sizing decision is built on drifted inputs.
    KernelOpCount,
    /// `SFC-K03` — interval analysis over the assumed input range reaches a
    /// non-finite value (overflow past `f32::MAX` or NaN) in one stencil
    /// application.
    KernelNonFinite,
    /// `SFC-K04` — the kernel divides by a value whose interval contains
    /// zero: division-by-zero is statically reachable.
    KernelDivByZero,
    /// `SFC-K05` — von Neumann analysis of the linear constant-coefficient
    /// kernel bounds the symbol's max amplification above 1: the iterative
    /// configuration (unroll `p` per pass) diverges, so simulating it wastes
    /// every cycle.
    KernelUnstable,
    /// `SFC-X01` — multi-device shard legality: every slab of the 1D
    /// decomposition must own at least the halo depth `p·stages·⌈D/2⌉` of
    /// outermost units, or a pass would need halo data from beyond its
    /// direct neighbours and the neighbour-only exchange model breaks.
    ShardHalo,
}

impl RuleId {
    /// Stable short code for logs and human output.
    pub fn code(&self) -> &'static str {
        match self {
            RuleId::InvalidParam => "SFC-P01",
            RuleId::DimsMismatch => "SFC-P02",
            RuleId::WindowReach => "SFC-W01",
            RuleId::WindowCapacity => "SFC-W02",
            RuleId::FifoDeadlock => "SFC-F01",
            RuleId::FifoSlack => "SFC-F02",
            RuleId::RawHazard => "SFC-R01",
            RuleId::TileHalo => "SFC-T01",
            RuleId::TileHalo2 => "SFC-T02",
            RuleId::TileThroughput => "SFC-T03",
            RuleId::VectorAlignment => "SFC-T04",
            RuleId::DspOversubscribed => "SFC-S01",
            RuleId::FabricOversubscribed => "SFC-S02",
            RuleId::SlrOverflow => "SFC-S03",
            RuleId::SlrSpanning => "SFC-S04",
            RuleId::BandwidthChannels => "SFC-B01",
            RuleId::ExternalCapacity => "SFC-B02",
            RuleId::KernelFootprint => "SFC-K01",
            RuleId::KernelOpCount => "SFC-K02",
            RuleId::KernelNonFinite => "SFC-K03",
            RuleId::KernelDivByZero => "SFC-K04",
            RuleId::KernelUnstable => "SFC-K05",
            RuleId::ShardHalo => "SFC-X01",
        }
    }

    /// The paper equation / mechanism the rule encodes (for the catalogue).
    pub fn reference(&self) -> &'static str {
        match self {
            RuleId::InvalidParam => "design domain",
            RuleId::DimsMismatch => "§IV-A blocking modes",
            RuleId::WindowReach => "§III window buffers (D stream units)",
            RuleId::WindowCapacity => "eq. (7)",
            RuleId::FifoDeadlock => "§III FIFO burst reuse / PR 2 watchdog",
            RuleId::FifoSlack => "interstage sizing rule (2 bursts)",
            RuleId::RawHazard => "§III-A iterative unroll dependency",
            RuleId::TileHalo => "eq. (8)",
            RuleId::TileHalo2 => "§IV-A tiling",
            RuleId::TileThroughput => "eq. (12)",
            RuleId::VectorAlignment => "§III-A vectorization",
            RuleId::DspOversubscribed => "eq. (6)",
            RuleId::FabricOversubscribed => "fabric estimate",
            RuleId::SlrOverflow => "§III SLR floorplan",
            RuleId::SlrSpanning => "§V-C SLR spanning",
            RuleId::BandwidthChannels => "eq. (4)",
            RuleId::ExternalCapacity => "external capacity",
            RuleId::KernelFootprint => "eq. (7) window reach vs probe footprint",
            RuleId::KernelOpCount => "eqs. (5)/(6) G_dsp inputs vs counted ops",
            RuleId::KernelNonFinite => "interval analysis (one application)",
            RuleId::KernelDivByZero => "interval analysis (divisor range)",
            RuleId::KernelUnstable => "von Neumann symbol max|g(θ)| ≤ 1",
            RuleId::ShardHalo => "sf-multi slab decomposition / halo exchange",
        }
    }

    /// Every rule in the catalogue, in code order.
    pub const ALL: [RuleId; 23] = [
        RuleId::InvalidParam,
        RuleId::DimsMismatch,
        RuleId::WindowReach,
        RuleId::WindowCapacity,
        RuleId::FifoDeadlock,
        RuleId::FifoSlack,
        RuleId::RawHazard,
        RuleId::TileHalo,
        RuleId::TileHalo2,
        RuleId::TileThroughput,
        RuleId::VectorAlignment,
        RuleId::DspOversubscribed,
        RuleId::FabricOversubscribed,
        RuleId::SlrOverflow,
        RuleId::SlrSpanning,
        RuleId::BandwidthChannels,
        RuleId::ExternalCapacity,
        RuleId::KernelFootprint,
        RuleId::KernelOpCount,
        RuleId::KernelNonFinite,
        RuleId::KernelDivByZero,
        RuleId::KernelUnstable,
        RuleId::ShardHalo,
    ];

    /// Resolve a short code (`SFC-…`, case-insensitive) to its rule.
    pub fn from_code(code: &str) -> Option<RuleId> {
        RuleId::ALL.iter().copied().find(|r| r.code().eq_ignore_ascii_case(code.trim()))
    }

    /// The severity the rule fires at (kernel range rules are heuristic —
    /// they depend on the assumed input range — and warn; everything else
    /// that fires at all is either an error or a named warning).
    pub fn default_severity(&self) -> Severity {
        match self {
            RuleId::FifoSlack
            | RuleId::TileHalo2
            | RuleId::TileThroughput
            | RuleId::VectorAlignment
            | RuleId::SlrSpanning
            | RuleId::KernelNonFinite
            | RuleId::KernelDivByZero => Severity::Warning,
            _ => Severity::Error,
        }
    }

    /// One-line description for the catalogue.
    pub fn summary(&self) -> &'static str {
        match self {
            RuleId::InvalidParam => "vectorization V and unroll p must be positive",
            RuleId::DimsMismatch => "execution mode, stencil and workload dimensionality agree",
            RuleId::WindowReach => "window buffers must cover the stencil reach (D stream units)",
            RuleId::WindowCapacity => "quantized window buffers + FIFOs must fit BRAM/URAM",
            RuleId::FifoDeadlock => "every FIFO must absorb one full AXI burst (static deadlock)",
            RuleId::FifoSlack => "FIFO depth below the two-bursts-of-slack sizing rule",
            RuleId::RawHazard => "p in-flight passes must not outrun the streaming extent",
            RuleId::TileHalo => "tiles must exceed the halo p·D_fused",
            RuleId::TileHalo2 => "tile larger than the mesh extent it blocks",
            RuleId::TileThroughput => "tile below the M ≥ 3·D·p throughput guideline",
            RuleId::VectorAlignment => "tile width must be a multiple of V",
            RuleId::DspOversubscribed => "DSP demand p·V·G_dsp exceeds the device",
            RuleId::FabricOversubscribed => "estimated LUT/FF demand exceeds the fabric",
            RuleId::SlrOverflow => "the module chain cannot be floorplanned onto the SLRs",
            RuleId::SlrSpanning => "a module exceeds one SLR and must span regions",
            RuleId::BandwidthChannels => "V exceeds the memory channels per direction",
            RuleId::ExternalCapacity => "ping-pong buffers exceed external memory",
            RuleId::KernelFootprint => {
                "extracted kernel footprint exceeds the spec's declared reach"
            }
            RuleId::KernelOpCount => "counted kernel ops drift from the declared flops/G_dsp",
            RuleId::KernelNonFinite => "NaN/overflow statically reachable in one application",
            RuleId::KernelDivByZero => "division by an interval containing zero is reachable",
            RuleId::KernelUnstable => "von Neumann-unstable iterative configuration",
            RuleId::ShardHalo => "every device shard must own at least the halo depth",
        }
    }

    /// How to fix a firing of this rule, for the catalogue.
    pub fn fix_guidance(&self) -> &'static str {
        match self {
            RuleId::InvalidParam => "choose V ≥ 1 and p ≥ 1",
            RuleId::DimsMismatch => "match the blocking mode to the workload dimensionality",
            RuleId::WindowReach => "widen the mesh/tile or size the buffers for the full unit",
            RuleId::WindowCapacity => "reduce p, tile the mesh, or lower V",
            RuleId::FifoDeadlock => "deepen every stream FIFO to at least one AXI burst",
            RuleId::FifoSlack => "deepen the stream FIFOs to the two-burst sizing rule",
            RuleId::RawHazard => "reduce p below the streaming extent or grow the mesh",
            RuleId::TileHalo => "grow the tile above p·D_fused cells or reduce p",
            RuleId::TileHalo2 => "clamp the tile to the extent or drop tiling",
            RuleId::TileThroughput => "grow the tile to at least 3·D·p cells",
            RuleId::VectorAlignment => "round the tile to a multiple of V",
            RuleId::DspOversubscribed => "reduce p·V below the device DSP budget",
            RuleId::FabricOversubscribed => "reduce p·V or simplify the per-cell arithmetic",
            RuleId::SlrOverflow => "reduce p, or shrink the per-module window footprint",
            RuleId::SlrSpanning => "reduce V so one module fits an SLR",
            RuleId::BandwidthChannels => "reduce V or switch the memory binding",
            RuleId::ExternalCapacity => "shrink the mesh/batch or use the larger memory",
            RuleId::KernelFootprint => {
                "raise the spec's order to 2× the probed radius (or fix the kernel's reads)"
            }
            RuleId::KernelOpCount => {
                "regenerate the spec's OpCount from the kernel (the probe tally is the truth)"
            }
            RuleId::KernelNonFinite => "rescale coefficients or tighten the documented input range",
            RuleId::KernelDivByZero => "guard the divisor away from zero or add an epsilon",
            RuleId::KernelUnstable => {
                "shrink the time step / coefficients until max|g| ≤ 1, or reduce p"
            }
            RuleId::ShardHalo => {
                "reduce the device count, reduce p (the halo is p·stages·⌈D/2⌉), or grow the mesh"
            }
        }
    }

    /// Render the full catalogue entry for `--explain`.
    pub fn explain(&self) -> String {
        let sev = match self.default_severity() {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        format!(
            "{code}  [{sev}]\n  rule     : {summary}\n  governs  : {reference}\n  fix      : {fix}\n",
            code = self.code(),
            summary = self.summary(),
            reference = self.reference(),
            fix = self.fix_guidance(),
        )
    }
}

impl core::fmt::Display for RuleId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.code())
    }
}

/// How bad a finding is.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// The design is illegal: it will fail synthesis or wedge the pipeline.
    Error,
    /// The design works but leaves performance or margin on the table.
    Warning,
}

/// One finding from one rule, anchored to a dataflow-graph location.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Which rule fired.
    pub rule: RuleId,
    /// Error or warning.
    pub severity: Severity,
    /// Where in the dataflow graph (node/edge label, or `design` for
    /// whole-design findings).
    pub location: String,
    /// What is wrong, with the numbers that prove it.
    pub message: String,
    /// How to fix it.
    pub hint: String,
}

impl core::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        write!(f, "{sev:<7} {} [{}] {}", self.rule.code(), self.location, self.message)
    }
}

/// Everything one check run produced.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CheckReport {
    /// Device the design was checked against.
    pub device: String,
    /// Application name.
    pub app: String,
    /// Vectorization factor checked.
    pub v: usize,
    /// Unroll factor checked.
    pub p: usize,
    /// Execution mode checked.
    pub mode: ExecMode,
    /// External memory binding.
    pub mem: MemKind,
    /// Workload the design targets.
    pub workload: Workload,
    /// Nodes in the constructed dataflow graph.
    pub graph_nodes: usize,
    /// FIFO edges in the constructed dataflow graph.
    pub graph_edges: usize,
    /// All findings, errors first.
    pub diagnostics: Vec<Diagnostic>,
}

impl CheckReport {
    /// `true` if any diagnostic is an [`Severity::Error`].
    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(|d| d.severity == Severity::Error)
    }

    /// Error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Error)
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.errors().count()
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics.len() - self.error_count()
    }

    /// Rule ids that fired, in order.
    pub fn fired_rules(&self) -> Vec<RuleId> {
        self.diagnostics.iter().map(|d| d.rule).collect()
    }

    /// `true` if the given rule fired at any severity.
    pub fn fired(&self, rule: RuleId) -> bool {
        self.diagnostics.iter().any(|d| d.rule == rule)
    }

    /// Deterministically order the diagnostics: errors first, then by rule
    /// code, then by graph location, then by message. Rule evaluation order
    /// (and any later merging of kernel-analysis findings) therefore never
    /// shows through `--json` output — it is byte-stable.
    pub fn sort_diagnostics(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            a.severity
                .cmp(&b.severity)
                .then_with(|| a.rule.code().cmp(b.rule.code()))
                .then_with(|| a.location.cmp(&b.location))
                .then_with(|| a.message.cmp(&b.message))
        });
    }

    /// Merge extra findings (e.g. kernel-analysis K-rules) into the report,
    /// restoring the deterministic order.
    pub fn extend_diagnostics(&mut self, extra: impl IntoIterator<Item = Diagnostic>) {
        self.diagnostics.extend(extra);
        self.sort_diagnostics();
    }

    /// Convert into a `Result`: `Err` carries the report when any rule
    /// fired at error severity.
    pub fn into_result(self) -> Result<CheckReport, CheckError> {
        if self.has_errors() {
            Err(CheckError { report: Box::new(self) })
        } else {
            Ok(self)
        }
    }

    /// Human-readable rendering, errors first.
    pub fn render(&self) -> String {
        use core::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "sf-check: {} V={} p={} {:?} on {:?} ({})",
            self.app, self.v, self.p, self.mode, self.workload, self.device
        );
        let _ = writeln!(
            s,
            "dataflow graph: {} nodes, {} FIFO edges",
            self.graph_nodes, self.graph_edges
        );
        if self.diagnostics.is_empty() {
            let _ = writeln!(s, "ok: no design-rule violations");
            return s;
        }
        for sev in [Severity::Error, Severity::Warning] {
            for d in self.diagnostics.iter().filter(|d| d.severity == sev) {
                let _ = writeln!(s, "  {d}");
                if !d.hint.is_empty() {
                    let _ = writeln!(s, "          fix: {}", d.hint);
                }
            }
        }
        let _ = writeln!(s, "{} error(s), {} warning(s)", self.error_count(), self.warning_count());
        s
    }
}

/// A check run that found at least one error-severity violation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CheckError {
    /// The full report, warnings included. Boxed so error enums that embed
    /// a `CheckError` stay pointer-sized on their happy paths.
    pub report: Box<CheckReport>,
}

impl core::fmt::Display for CheckError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let errs: Vec<&Diagnostic> = self.report.errors().collect();
        write!(f, "{} design-rule error(s):", errs.len())?;
        for d in errs {
            write!(f, " [{} {}]", d.rule.code(), d.message)?;
        }
        Ok(())
    }
}

impl std::error::Error for CheckError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(diags: Vec<Diagnostic>) -> CheckReport {
        CheckReport {
            device: "test".into(),
            app: "Poisson-5pt-2D".into(),
            v: 8,
            p: 4,
            mode: ExecMode::Baseline,
            mem: MemKind::Hbm,
            workload: Workload::D2 { nx: 40, ny: 40, batch: 1 },
            graph_nodes: 6,
            graph_edges: 5,
            diagnostics: diags,
        }
    }

    fn diag(rule: RuleId, severity: Severity) -> Diagnostic {
        Diagnostic {
            rule,
            severity,
            location: "design".into(),
            message: "msg".into(),
            hint: "hint".into(),
        }
    }

    #[test]
    fn codes_are_unique_and_stable() {
        let all = RuleId::ALL;
        let mut codes: Vec<&str> = all.iter().map(|r| r.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), all.len(), "duplicate rule code");
        for r in all {
            assert!(r.code().starts_with("SFC-"));
            assert!(!r.reference().is_empty());
            assert!(!r.summary().is_empty());
            assert!(!r.fix_guidance().is_empty());
            assert_eq!(RuleId::from_code(r.code()), Some(r), "{} resolves", r.code());
        }
        assert!(all.contains(&RuleId::KernelFootprint));
        assert_eq!(RuleId::KernelUnstable.code(), "SFC-K05");
    }

    #[test]
    fn from_code_is_case_insensitive_and_total() {
        assert_eq!(RuleId::from_code("sfc-k01"), Some(RuleId::KernelFootprint));
        assert_eq!(RuleId::from_code(" SFC-F01 "), Some(RuleId::FifoDeadlock));
        assert_eq!(RuleId::from_code("SFC-Z99"), None);
    }

    #[test]
    fn explain_renders_every_rule() {
        for r in RuleId::ALL {
            let e = r.explain();
            assert!(e.contains(r.code()), "{e}");
            assert!(e.contains("fix"), "{e}");
        }
        assert!(RuleId::KernelUnstable.explain().contains("max|g"));
    }

    #[test]
    fn sort_is_deterministic_regardless_of_insertion_order() {
        let a = vec![
            diag(RuleId::FifoSlack, Severity::Warning),
            diag(RuleId::KernelUnstable, Severity::Error),
            diag(RuleId::DspOversubscribed, Severity::Error),
            diag(RuleId::KernelNonFinite, Severity::Warning),
        ];
        let mut b = a.clone();
        b.reverse();
        let mut ra = report_with(a);
        let mut rb = report_with(b);
        ra.sort_diagnostics();
        rb.sort_diagnostics();
        assert_eq!(ra, rb);
        // errors first, then code order within a severity band
        let codes: Vec<&str> = ra.diagnostics.iter().map(|d| d.rule.code()).collect();
        assert_eq!(codes, vec!["SFC-K05", "SFC-S01", "SFC-F02", "SFC-K03"]);
        let json_a = serde_json::to_string(&ra).unwrap();
        let json_b = serde_json::to_string(&rb).unwrap();
        assert_eq!(json_a, json_b, "JSON must be byte-stable");
    }

    #[test]
    fn extend_diagnostics_restores_order() {
        let mut rep = report_with(vec![diag(RuleId::FifoSlack, Severity::Warning)]);
        rep.sort_diagnostics();
        rep.extend_diagnostics([diag(RuleId::KernelFootprint, Severity::Error)]);
        assert_eq!(rep.diagnostics[0].rule, RuleId::KernelFootprint);
        assert_eq!(rep.diagnostics[1].rule, RuleId::FifoSlack);
    }

    #[test]
    fn report_counts_and_result() {
        let clean = report_with(vec![]);
        assert!(!clean.has_errors());
        assert!(clean.clone().into_result().is_ok());
        assert!(clean.render().contains("ok: no design-rule violations"));

        let mixed = report_with(vec![
            diag(RuleId::FifoSlack, Severity::Warning),
            diag(RuleId::FifoDeadlock, Severity::Error),
        ]);
        assert!(mixed.has_errors());
        assert_eq!(mixed.error_count(), 1);
        assert_eq!(mixed.warning_count(), 1);
        assert!(mixed.fired(RuleId::FifoDeadlock));
        assert!(!mixed.fired(RuleId::RawHazard));
        let err = mixed.into_result().unwrap_err();
        let s = format!("{err}");
        assert!(s.contains("1 design-rule error"), "{s}");
        assert!(s.contains("SFC-F01"), "{s}");
    }

    #[test]
    fn render_orders_errors_first() {
        let rep = report_with(vec![
            diag(RuleId::FifoSlack, Severity::Warning),
            diag(RuleId::DspOversubscribed, Severity::Error),
        ]);
        let out = rep.render();
        let e = out.find("SFC-S01").unwrap();
        let w = out.find("SFC-F02").unwrap();
        assert!(e < w, "{out}");
    }

    #[test]
    fn diagnostics_roundtrip_serde() {
        let d = diag(RuleId::RawHazard, Severity::Error);
        let s = serde_json::to_string(&d).unwrap();
        let back: Diagnostic = serde_json::from_str(&s).unwrap();
        assert_eq!(back, d);
    }
}
