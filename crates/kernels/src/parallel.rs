//! Rayon data-parallel executors.
//!
//! These serve two roles:
//!
//! 1. they compute the *numerics* for the GPU comparator in `sf-gpu`
//!    (the V100's runtime comes from the analytic performance model, but the
//!    result meshes come from here), and
//! 2. they are the fast CPU baselines used by the examples and benches.
//!
//! Because each output cell is an independent pure function of the input
//! mesh, row-parallel evaluation is **bit-exact** vs. the sequential
//! reference — asserted by the tests below and by integration tests.

use crate::op2d::StencilOp2D;
use crate::op3d::StencilOp3D;
use crate::rtm::{self, RtmParams, RtmStage, RtmState};
use rayon::prelude::*;
use sf_mesh::{Batch2D, Batch3D, Element, Mesh2D, Mesh3D};

/// One parallel 2D stage (rows distributed over the Rayon pool).
pub fn par_step_2d<T: Element, K: StencilOp2D<T>>(k: &K, input: &Mesh2D<T>) -> Mesh2D<T> {
    let (nx, ny) = (input.nx(), input.ny());
    let r = k.radius();
    let mut out = Mesh2D::<T>::zeros(nx, ny);
    out.as_mut_slice().par_chunks_mut(nx).enumerate().for_each(|(y, row)| {
        for (x, cell) in row.iter_mut().enumerate() {
            *cell = if input.is_interior(x, y, r) {
                k.apply(|dx, dy| input.get((x as i32 + dx) as usize, (y as i32 + dy) as usize))
            } else {
                k.on_boundary(input.get(x, y))
            };
        }
    });
    out
}

/// Run `iters` parallel 2D iterations.
pub fn par_run_2d<T: Element, K: StencilOp2D<T>>(
    k: &K,
    mesh: &Mesh2D<T>,
    iters: usize,
) -> Mesh2D<T> {
    let mut cur = mesh.clone();
    for _ in 0..iters {
        cur = par_step_2d(k, &cur);
    }
    cur
}

/// One parallel 3D stage (planes × rows distributed over the pool).
pub fn par_step_3d<T: Element, K: StencilOp3D<T>>(k: &K, input: &Mesh3D<T>) -> Mesh3D<T> {
    let (nx, ny, nz) = (input.nx(), input.ny(), input.nz());
    let r = k.radius();
    let mut out = Mesh3D::<T>::zeros(nx, ny, nz);
    out.as_mut_slice().par_chunks_mut(nx).enumerate().for_each(|(row_idx, row)| {
        let z = row_idx / ny;
        let y = row_idx % ny;
        for (x, cell) in row.iter_mut().enumerate() {
            *cell = if input.is_interior(x, y, z, r) {
                k.apply(|dx, dy, dz| {
                    input.get(
                        (x as i32 + dx) as usize,
                        (y as i32 + dy) as usize,
                        (z as i32 + dz) as usize,
                    )
                })
            } else {
                k.on_boundary(input.get(x, y, z))
            };
        }
    });
    out
}

/// Run `iters` parallel 3D iterations.
pub fn par_run_3d<T: Element, K: StencilOp3D<T>>(
    k: &K,
    mesh: &Mesh3D<T>,
    iters: usize,
) -> Mesh3D<T> {
    let mut cur = mesh.clone();
    for _ in 0..iters {
        cur = par_step_3d(k, &cur);
    }
    cur
}

/// Parallel multi-stage 2D loop chain.
pub fn par_run_stages_2d<T: Element, K: StencilOp2D<T>>(
    stages: &[K],
    mesh: &Mesh2D<T>,
    iters: usize,
) -> Mesh2D<T> {
    let mut cur = mesh.clone();
    for _ in 0..iters {
        for k in stages {
            cur = par_step_2d(k, &cur);
        }
    }
    cur
}

/// Parallel multi-stage 3D loop chain.
pub fn par_run_stages_3d<T: Element, K: StencilOp3D<T>>(
    stages: &[K],
    mesh: &Mesh3D<T>,
    iters: usize,
) -> Mesh3D<T> {
    let mut cur = mesh.clone();
    for _ in 0..iters {
        for k in stages {
            cur = par_step_3d(k, &cur);
        }
    }
    cur
}

/// Parallel batched 2D solve: the batch dimension itself is parallelized —
/// the same strategy the paper's GPU batching baseline \[27\] uses.
pub fn par_run_batch_2d<T: Element, K: StencilOp2D<T>>(
    k: &K,
    batch: &Batch2D<T>,
    iters: usize,
) -> Batch2D<T> {
    let meshes: Vec<_> =
        (0..batch.batch()).into_par_iter().map(|i| par_run_2d(k, &batch.mesh(i), iters)).collect();
    Batch2D::from_meshes(&meshes)
}

/// Parallel batched 3D solve.
pub fn par_run_batch_3d<T: Element, K: StencilOp3D<T>>(
    k: &K,
    batch: &Batch3D<T>,
    iters: usize,
) -> Batch3D<T> {
    let meshes: Vec<_> =
        (0..batch.batch()).into_par_iter().map(|i| par_run_3d(k, &batch.mesh(i), iters)).collect();
    Batch3D::from_meshes(&meshes)
}

/// Parallel RTM forward pass.
pub fn par_rtm_run(
    y: &Mesh3D<RtmState>,
    rho: &Mesh3D<f32>,
    mu: &Mesh3D<f32>,
    params: RtmParams,
    iters: usize,
) -> Mesh3D<RtmState> {
    let stages = RtmStage::pipeline(params);
    let packed0 = rtm::pack(y, rho, mu);
    let packed = par_run_stages_3d(&stages, &packed0, iters);
    rtm::unpack(&packed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jacobi3d::Jacobi3D;
    use crate::poisson::Poisson2D;
    use crate::reference;
    use sf_mesh::norms;

    #[test]
    fn par_2d_bit_exact_vs_reference() {
        let m = Mesh2D::<f32>::random(33, 17, 5, -1.0, 1.0);
        let seq = reference::run_2d(&Poisson2D, &m, 10);
        let par = par_run_2d(&Poisson2D, &m, 10);
        assert!(norms::bit_equal(seq.as_slice(), par.as_slice()));
    }

    #[test]
    fn par_3d_bit_exact_vs_reference() {
        let m = Mesh3D::<f32>::random(13, 11, 9, 6, -1.0, 1.0);
        let k = Jacobi3D::smoothing();
        let seq = reference::run_3d(&k, &m, 8);
        let par = par_run_3d(&k, &m, 8);
        assert!(norms::bit_equal(seq.as_slice(), par.as_slice()));
    }

    #[test]
    fn par_rtm_bit_exact_vs_reference() {
        let (y, rho, mu) = rtm::demo_workload(14, 12, 13);
        let prm = RtmParams::default();
        let seq = reference::rtm_run(&y, &rho, &mu, prm, 4);
        let par = par_rtm_run(&y, &rho, &mu, prm, 4);
        assert!(norms::bit_equal(seq.as_slice(), par.as_slice()));
    }

    #[test]
    fn par_batch_bit_exact_vs_reference() {
        let batch = Batch2D::<f32>::random(12, 9, 4, 7, 0.0, 1.0);
        let seq = reference::run_batch_2d(&Poisson2D, &batch, 5);
        let par = par_run_batch_2d(&Poisson2D, &batch, 5);
        assert!(norms::bit_equal(seq.as_slice(), par.as_slice()));
    }

    #[test]
    fn par_batch_3d_bit_exact() {
        let batch = Batch3D::<f32>::random(8, 8, 8, 3, 11, 0.0, 1.0);
        let k = Jacobi3D::smoothing();
        let seq = reference::run_batch_3d(&k, &batch, 3);
        let par = par_run_batch_3d(&k, &batch, 3);
        assert!(norms::bit_equal(seq.as_slice(), par.as_slice()));
    }
}
