//! Recovery policy, executor configuration and accumulated statistics.

use serde::{Deserialize, Serialize};
use std::path::PathBuf;

/// What a resilient executor does when a fault is detected mid-run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecoveryPolicy {
    /// Legacy behavior: surface the error (or the checksum mismatch) and
    /// let the caller rerun the whole workload from iteration zero.
    Rerun,
    /// Roll back to the last valid checkpoint and recompute only the
    /// lost iteration batches, at most `max_retries` times per segment.
    Rollback {
        /// Rollback attempts allowed per checkpoint segment before the
        /// run is declared unrecoverable.
        max_retries: u32,
    },
}

impl RecoveryPolicy {
    /// Parse a CLI policy name (`rerun` | `rollback`). Rollback uses the
    /// caller's retry budget.
    pub fn parse(s: &str, max_retries: u32) -> Option<RecoveryPolicy> {
        match s {
            "rerun" => Some(RecoveryPolicy::Rerun),
            "rollback" => Some(RecoveryPolicy::Rollback { max_retries }),
            _ => None,
        }
    }

    /// Stable lowercase label.
    pub fn name(&self) -> &'static str {
        match self {
            RecoveryPolicy::Rerun => "rerun",
            RecoveryPolicy::Rollback { .. } => "rollback",
        }
    }
}

/// Full configuration of the recoverable executors.
#[derive(Clone, Debug, PartialEq)]
pub struct RecoveryConfig {
    /// Rerun vs rollback (with retry budget).
    pub policy: RecoveryPolicy,
    /// Checkpoint every `N` temporal batches (pipeline passes). Must be
    /// positive — the CLI rejects 0 before it gets here.
    pub checkpoint_every: usize,
    /// Snapshots retained in the in-memory ring.
    pub ring_capacity: usize,
    /// ABFT comparison tolerance (absolute, per block sum). `0.0` is
    /// exact — correct for the linear operators; RK4 chains may widen it.
    pub abft_tol: f64,
    /// When set, every checkpoint is also spilled to
    /// `<dir>/ckpt_<passes>.sfckpt` in the versioned format.
    pub spill_dir: Option<PathBuf>,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            policy: RecoveryPolicy::Rollback { max_retries: 3 },
            checkpoint_every: 4,
            ring_capacity: 2,
            abft_tol: 0.0,
            spill_dir: None,
        }
    }
}

/// Accumulated recovery accounting for one run. All cycle figures are in
/// kernel cycles and are charged into the cycle plan by the executor.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryStats {
    /// Checkpoints captured (including the initial one).
    pub checkpoints_taken: u64,
    /// Cycles spent writing checkpoints through external memory (eq. 4
    /// write bandwidth).
    pub checkpoint_cycles: u64,
    /// ABFT signature comparisons performed.
    pub abft_checks: u64,
    /// Cycles spent streaming outputs through the checksum tree.
    pub abft_cycles: u64,
    /// Silent-data-corruption events caught by ABFT signatures.
    pub sdc_detected: u64,
    /// Rollbacks performed (checkpoint restores).
    pub rollbacks: u64,
    /// Temporal batches recomputed across all rollbacks.
    pub batches_replayed: u64,
    /// Cycles spent recomputing lost batches.
    pub recovery_cycles: u64,
}

impl RecoveryStats {
    /// Mean cycles per recovery event (0 when no rollback happened).
    pub fn mean_cycles_to_recovery(&self) -> u64 {
        self.recovery_cycles.checked_div(self.rollbacks).unwrap_or(0)
    }

    /// Total overhead the recovery layer added on top of the fault-free
    /// plan: checkpoint writes + ABFT checks + replayed batches.
    pub fn overhead_cycles(&self) -> u64 {
        self.checkpoint_cycles + self.abft_cycles + self.recovery_cycles
    }

    /// Merge another run's stats into this one (batch-parallel shards).
    pub fn merge(&mut self, other: &RecoveryStats) {
        self.checkpoints_taken += other.checkpoints_taken;
        self.checkpoint_cycles += other.checkpoint_cycles;
        self.abft_checks += other.abft_checks;
        self.abft_cycles += other.abft_cycles;
        self.sdc_detected += other.sdc_detected;
        self.rollbacks += other.rollbacks;
        self.batches_replayed += other.batches_replayed;
        self.recovery_cycles += other.recovery_cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_parses_cli_names() {
        assert_eq!(RecoveryPolicy::parse("rerun", 3), Some(RecoveryPolicy::Rerun));
        assert_eq!(
            RecoveryPolicy::parse("rollback", 5),
            Some(RecoveryPolicy::Rollback { max_retries: 5 })
        );
        assert_eq!(RecoveryPolicy::parse("retry", 1), None);
        assert_eq!(RecoveryPolicy::Rollback { max_retries: 2 }.name(), "rollback");
    }

    #[test]
    fn stats_mean_and_overhead() {
        let mut s = RecoveryStats::default();
        assert_eq!(s.mean_cycles_to_recovery(), 0);
        s.rollbacks = 2;
        s.recovery_cycles = 300;
        s.checkpoint_cycles = 40;
        s.abft_cycles = 10;
        assert_eq!(s.mean_cycles_to_recovery(), 150);
        assert_eq!(s.overhead_cycles(), 350);
        let mut t = RecoveryStats::default();
        t.merge(&s);
        t.merge(&s);
        assert_eq!(t.rollbacks, 4);
        assert_eq!(t.recovery_cycles, 600);
    }
}
