//! Simulation reports: the quantities the paper's figures and tables plot.

use crate::cycles::CyclePlan;
use crate::design::{ExecMode, StencilDesign};
use serde::{Deserialize, Serialize};
use sf_kernels::AppId;

/// Everything an experiment row needs: runtime, bandwidth, power, energy,
/// throughput, and the design that produced them.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Application.
    pub app: AppId,
    /// Platform label ("U280 (sim)" / "V100 (model)").
    pub platform: String,
    /// Execution mode.
    pub mode: ExecMode,
    /// Vectorization factor.
    pub v: usize,
    /// Iterative unroll factor.
    pub p: usize,
    /// Achieved clock (MHz); 0 for non-FPGA platforms.
    pub freq_mhz: f64,
    /// Iterations solved.
    pub niter: u64,
    /// Kernel passes / launches.
    pub passes: u64,
    /// Total kernel cycles (0 for non-FPGA platforms).
    pub total_cycles: u64,
    /// Wall-clock runtime, seconds.
    pub runtime_s: f64,
    /// Reported bandwidth (paper convention), GB/s.
    pub bandwidth_gbs: f64,
    /// External memory read traffic, bytes.
    pub ext_read_bytes: u64,
    /// External memory write traffic, bytes.
    pub ext_write_bytes: u64,
    /// Average power, watts.
    pub power_w: f64,
    /// Energy, joules.
    pub energy_j: f64,
    /// Cell updates per second.
    pub cells_per_sec: f64,
    /// Delivered GFLOP/s.
    pub gflops: f64,
}

impl SimReport {
    /// Assemble a report from a design, its cycle plan and average power.
    pub fn from_plan(design: &StencilDesign, plan: &CyclePlan, niter: u64, power_w: f64) -> Self {
        let runtime = plan.runtime_s;
        SimReport {
            app: design.spec.app,
            platform: "U280 (sim)".to_string(),
            mode: design.mode,
            v: design.v,
            p: design.p,
            freq_mhz: design.freq_hz / 1.0e6,
            niter,
            passes: plan.passes,
            total_cycles: plan.total_cycles,
            runtime_s: runtime,
            bandwidth_gbs: plan.bandwidth_gbs(),
            ext_read_bytes: plan.ext_read_bytes,
            ext_write_bytes: plan.ext_write_bytes,
            power_w,
            energy_j: power_w * runtime,
            cells_per_sec: plan.cells_per_sec(),
            gflops: plan.cell_iters as f64 * design.spec.flops_per_cell() as f64 / runtime / 1.0e9,
        }
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{} [{}] {:?}: {:.3} ms, {:.0} GB/s, {:.0} W, {:.3} kJ",
            self.app,
            self.platform,
            self.mode,
            self.runtime_s * 1e3,
            self.bandwidth_gbs,
            self.power_w,
            self.energy_j / 1e3,
        )
    }
}

/// A Vivado-style post-"synthesis" utilization report for a design.
pub fn utilization_report(dev: &crate::device::FpgaDevice, design: &StencilDesign) -> String {
    let u = &design.resources;
    let mut s = String::new();
    s.push_str(&format!(
        "┌─ {} — V={} p={} {:?} ({:?})\n",
        design.spec.app, design.v, design.p, design.mode, design.mem
    ));
    s.push_str(&format!(
        "│ clock     : {:.0} MHz (target {:.0})\n",
        design.freq_hz / 1e6,
        dev.default_clock_hz / 1e6
    ));
    let line = |name: &str, used: usize, avail: usize| {
        format!(
            "│ {name:<10}: {used:>6} / {avail:<6} ({:>5.1} %)\n",
            used as f64 / avail as f64 * 100.0
        )
    };
    s.push_str(&line("DSP48", u.dsp, dev.dsp_total));
    s.push_str(&line("BRAM36", u.bram_blocks, dev.bram_blocks));
    s.push_str(&line("URAM288", u.uram_blocks, dev.uram_blocks));
    s.push_str(&line("LUT est.", u.luts, dev.lut_total));
    s.push_str(&line("FF est.", u.ffs, dev.ff_total));
    s.push_str(&format!(
        "│ channels  : {} read + {} write ({:?})\n",
        design.read_channels, design.write_channels, design.mem
    ));
    let occ = design.placement.occupancy(dev.slr_count);
    s.push_str(&format!(
        "│ SLR       : modules {:?}, {} crossing(s), {} spanning\n",
        occ, design.placement.crossings, design.placement.spanning_modules
    ));
    s.push_str(&format!(
        "└ window    : {:.2} MB payload, pipeline latency {} cycles\n",
        u.window_bytes as f64 / 1e6,
        design.pipeline_latency_cycles
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycles;
    use crate::design::{synthesize, MemKind, Workload};
    use crate::device::FpgaDevice;
    use sf_kernels::StencilSpec;

    #[test]
    fn report_fields_consistent() {
        let d = FpgaDevice::u280();
        let wl = Workload::D2 { nx: 200, ny: 200, batch: 1 };
        let ds =
            synthesize(&d, &StencilSpec::poisson(), 8, 60, ExecMode::Baseline, MemKind::Hbm, &wl)
                .unwrap();
        let plan = cycles::plan(&d, &ds, &wl, 6000);
        let rep = SimReport::from_plan(&ds, &plan, 6000, 70.0);
        assert_eq!(rep.app, AppId::Poisson2D);
        assert!((rep.energy_j - 70.0 * rep.runtime_s).abs() < 1e-9);
        assert!(rep.bandwidth_gbs > 0.0);
        assert!(rep.gflops > 0.0);
        // 6 flops/cell at 8 B/cell → gflops = bw/8*6
        let expect = rep.bandwidth_gbs / 8.0 * 6.0;
        assert!((rep.gflops - expect).abs() / expect < 1e-9);
        assert!(!rep.summary().is_empty());
    }

    #[test]
    fn utilization_report_renders() {
        let d = FpgaDevice::u280();
        let wl = Workload::D2 { nx: 400, ny: 400, batch: 1 };
        let ds =
            synthesize(&d, &StencilSpec::poisson(), 8, 60, ExecMode::Baseline, MemKind::Hbm, &wl)
                .unwrap();
        let r = utilization_report(&d, &ds);
        assert!(r.contains("DSP48"));
        assert!(r.contains("6720"));
        assert!(r.contains("SLR"));
        assert!(r.contains("crossing"));
        assert!(r.contains("MHz"));
    }
}
