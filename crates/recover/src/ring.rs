//! Bounded in-memory ring of the most recent checkpoints.

use crate::checkpoint::Snapshot;
use std::collections::VecDeque;

/// Keeps the last `K` snapshots; pushing onto a full ring evicts the
/// oldest. `K = 0` is clamped to 1 — a rollback layer with no retained
/// checkpoint cannot recover anything.
#[derive(Clone, Debug)]
pub struct CheckpointRing {
    cap: usize,
    slots: VecDeque<Snapshot>,
}

impl CheckpointRing {
    /// A ring retaining at most `cap` snapshots (minimum 1).
    pub fn new(cap: usize) -> CheckpointRing {
        CheckpointRing { cap: cap.max(1), slots: VecDeque::new() }
    }

    /// Retention capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Snapshots currently retained.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no snapshot has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Push a snapshot, evicting the oldest when full.
    pub fn push(&mut self, snap: Snapshot) {
        if self.slots.len() == self.cap {
            self.slots.pop_front();
        }
        self.slots.push_back(snap);
    }

    /// The most recent snapshot — the rollback target.
    pub fn latest(&self) -> Option<&Snapshot> {
        self.slots.back()
    }

    /// The oldest retained snapshot.
    pub fn oldest(&self) -> Option<&Snapshot> {
        self.slots.front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(pass: u64) -> Snapshot {
        Snapshot::capture(pass * 4, pass, &[2, 2], 1, &[pass as f32; 4])
    }

    #[test]
    fn ring_evicts_oldest_and_tracks_latest() {
        let mut r = CheckpointRing::new(2);
        assert!(r.is_empty());
        r.push(snap(1));
        r.push(snap(2));
        r.push(snap(3));
        assert_eq!(r.len(), 2);
        assert_eq!(r.oldest().map(|s| s.passes_done), Some(2));
        assert_eq!(r.latest().map(|s| s.passes_done), Some(3));
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut r = CheckpointRing::new(0);
        assert_eq!(r.capacity(), 1);
        r.push(snap(1));
        assert_eq!(r.len(), 1);
    }
}
