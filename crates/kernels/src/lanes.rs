//! Lane-parallel kernel evaluation: the bridge between the generic
//! [`AbstractValue`] kernel bodies and the `sf-simd` pack type.
//!
//! The fast-path executors (`sf_fpga::fast`) advance [`sf_simd::LANES`]
//! adjacent cells per step. Three pieces make that possible without a
//! second copy of any kernel:
//!
//! * [`F32xL`] implements [`AbstractValue`], so every generic `update`
//!   body in this crate can be instantiated at the pack type. Each lane
//!   replays the *identical* floating-point operation sequence the `f32`
//!   instantiation performs — the per-cell result is bit-exact by
//!   construction (elementwise IEEE ops, no reassociation, no FMA).
//! * [`LaneElement`] extends [`Element`] with a gather/scatter pair that
//!   maps a run of `LANES` mesh elements to the kernel's pack
//!   representation: `f32` cells load straight into one [`F32xL`];
//!   [`VecN`] cells transpose array-of-structs storage into one pack per
//!   component (the structure-of-arrays layout the packed kernels expect).
//! * [`LaneOp2D`] / [`LaneOp3D`] are the lane-parallel counterparts of
//!   [`StencilOp2D`] / [`StencilOp3D`]: `apply_lanes` evaluates the update
//!   for `LANES` adjacent cells at once, given a neighborhood accessor
//!   that gathers packs instead of single elements. Implementations
//!   delegate to the same generic `update` the scalar `apply` uses.
//!
//! Only kernels whose updates are written generically carry a lane impl
//! (the paper's three applications and the random star stencils); kernels
//! with hand-written scalar bodies — e.g. [`crate::wave2d`] — simply stay
//! on the scalar executors.

use crate::domain::{AbstractOp2D, AbstractOp3D, AbstractValue};
use crate::jacobi3d::Jacobi3D;
use crate::op2d::StencilOp2D;
use crate::op3d::StencilOp3D;
use crate::poisson::Poisson2D;
use crate::rtm::{RtmPacked, RtmStage, RTM_PACKED_LANES};
use crate::star::{StarStencil2D, StarStencil3D};
use sf_mesh::{Element, VecN};
use sf_simd::{F32xL, LANES};

impl AbstractValue for F32xL {
    #[inline(always)]
    fn constant(c: f32) -> Self {
        F32xL::splat(c)
    }
}

/// An [`Element`] whose meshes the fast path can process `LANES` cells at
/// a time: a gather/scatter pair between a run of adjacent elements and
/// the kernel's pack representation.
pub trait LaneElement: Element {
    /// The pack representation of `LANES` adjacent cells of this element.
    type Lanes: Copy;

    /// Load the `LANES` elements at `row[x..x + LANES]` into packs.
    ///
    /// # Panics
    /// Panics if the run extends past the end of `row`.
    fn gather(row: &[Self], x: usize) -> Self::Lanes;

    /// Store packs back into the `LANES` elements at `row[x..x + LANES]`.
    ///
    /// # Panics
    /// Panics if the run extends past the end of `row`.
    fn scatter(lanes: Self::Lanes, row: &mut [Self], x: usize);
}

impl LaneElement for f32 {
    type Lanes = F32xL;

    #[inline]
    fn gather(row: &[Self], x: usize) -> F32xL {
        F32xL::from_slice(&row[x..x + LANES])
    }

    #[inline]
    fn scatter(lanes: F32xL, row: &mut [Self], x: usize) {
        lanes.write_to(&mut row[x..x + LANES]);
    }
}

impl<const N: usize> LaneElement for VecN<N> {
    /// One pack per component: the AoS→SoA transpose of `LANES` cells.
    type Lanes = [F32xL; N];

    #[inline]
    fn gather(row: &[Self], x: usize) -> [F32xL; N] {
        let mut out = [F32xL::default(); N];
        for (c, pack) in out.iter_mut().enumerate() {
            let mut lanes = [0.0f32; LANES];
            for (i, lane) in lanes.iter_mut().enumerate() {
                *lane = row[x + i].0[c];
            }
            *pack = F32xL(lanes);
        }
        out
    }

    #[inline]
    fn scatter(lanes: [F32xL; N], row: &mut [Self], x: usize) {
        for (c, pack) in lanes.iter().enumerate() {
            for i in 0..LANES {
                row[x + i].0[c] = pack.lane(i);
            }
        }
    }
}

/// A 2D stencil the fast path can evaluate `LANES` cells at a time.
///
/// `apply_lanes` must compute, lane for lane, exactly what
/// [`StencilOp2D::apply`] computes for the corresponding cell — every
/// implementation here guarantees that by instantiating the *same* generic
/// update at [`F32xL`] instead of `f32`.
pub trait LaneOp2D<T: LaneElement>: StencilOp2D<T> {
    /// The per-pack update over a neighborhood accessor `at(dx, dy)` that
    /// gathers the packs for `LANES` adjacent cells at offset `(dx, dy)`.
    fn apply_lanes<F: Fn(i32, i32) -> T::Lanes>(&self, at: &F) -> T::Lanes;
}

/// The 3D twin of [`LaneOp2D`].
pub trait LaneOp3D<T: LaneElement>: StencilOp3D<T> {
    /// The per-pack update over a neighborhood accessor `at(dx, dy, dz)`.
    fn apply_lanes<F: Fn(i32, i32, i32) -> T::Lanes>(&self, at: &F) -> T::Lanes;
}

impl<T: LaneElement, K: LaneOp2D<T>> LaneOp2D<T> for &K {
    fn apply_lanes<F: Fn(i32, i32) -> T::Lanes>(&self, at: &F) -> T::Lanes {
        (**self).apply_lanes(at)
    }
}

impl<T: LaneElement, K: LaneOp3D<T>> LaneOp3D<T> for &K {
    fn apply_lanes<F: Fn(i32, i32, i32) -> T::Lanes>(&self, at: &F) -> T::Lanes {
        (**self).apply_lanes(at)
    }
}

impl LaneOp2D<f32> for Poisson2D {
    #[inline]
    fn apply_lanes<F: Fn(i32, i32) -> F32xL>(&self, at: &F) -> F32xL {
        self.update::<F32xL, _>(at)
    }
}

impl LaneOp2D<f32> for StarStencil2D {
    #[inline]
    fn apply_lanes<F: Fn(i32, i32) -> F32xL>(&self, at: &F) -> F32xL {
        self.update::<F32xL, _>(at)
    }
}

impl LaneOp3D<f32> for Jacobi3D {
    #[inline]
    fn apply_lanes<F: Fn(i32, i32, i32) -> F32xL>(&self, at: &F) -> F32xL {
        self.update::<F32xL, _>(at)
    }
}

impl LaneOp3D<f32> for StarStencil3D {
    #[inline]
    fn apply_lanes<F: Fn(i32, i32, i32) -> F32xL>(&self, at: &F) -> F32xL {
        self.update::<F32xL, _>(at)
    }
}

impl LaneOp3D<RtmPacked> for RtmStage {
    #[inline]
    fn apply_lanes<F: Fn(i32, i32, i32) -> [F32xL; RTM_PACKED_LANES]>(
        &self,
        at: &F,
    ) -> [F32xL; RTM_PACKED_LANES] {
        self.update_packed::<F32xL, _>(at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic pseudo-mesh value for cell (x, y).
    fn cell(x: i32, y: i32) -> f32 {
        ((x * 31 + y * 7) % 13) as f32 * 0.125 - 0.5
    }

    #[test]
    fn poisson_lanes_bit_exact_vs_scalar_apply() {
        let x0 = 3i32;
        let lanes = Poisson2D.apply_lanes(&|dx, dy| {
            let mut v = [0.0f32; LANES];
            for (i, lane) in v.iter_mut().enumerate() {
                *lane = cell(x0 + i as i32 + dx, 10 + dy);
            }
            F32xL(v)
        });
        for i in 0..LANES {
            let scalar = Poisson2D.apply(|dx, dy| cell(x0 + i as i32 + dx, 10 + dy));
            assert_eq!(lanes.lane(i).to_bits(), scalar.to_bits(), "lane {i}");
        }
    }

    #[test]
    fn star_lanes_bit_exact_vs_scalar_apply() {
        let k = StarStencil2D::laplace9_order4(0.1, 0.4);
        let lanes = k.apply_lanes(&|dx, dy| {
            let mut v = [0.0f32; LANES];
            for (i, lane) in v.iter_mut().enumerate() {
                *lane = cell(i as i32 + dx, dy);
            }
            F32xL(v)
        });
        for i in 0..LANES {
            let scalar = k.apply(|dx, dy| cell(i as i32 + dx, dy));
            assert_eq!(lanes.lane(i).to_bits(), scalar.to_bits(), "lane {i}");
        }
    }

    #[test]
    fn jacobi_lanes_bit_exact_vs_scalar_apply() {
        let k = Jacobi3D::smoothing();
        let f = |x: i32, y: i32, z: i32| ((x * 5 + y * 3 + z) % 11) as f32 * 0.1;
        let lanes = k.apply_lanes(&|dx, dy, dz| {
            let mut v = [0.0f32; LANES];
            for (i, lane) in v.iter_mut().enumerate() {
                *lane = f(i as i32 + dx, dy, dz);
            }
            F32xL(v)
        });
        for i in 0..LANES {
            let scalar = k.apply(|dx, dy, dz| f(i as i32 + dx, dy, dz));
            assert_eq!(lanes.lane(i).to_bits(), scalar.to_bits(), "lane {i}");
        }
    }

    #[test]
    fn vecn_gather_scatter_roundtrips_and_transposes() {
        let row: Vec<VecN<3>> =
            (0..LANES + 4).map(|i| VecN([i as f32, i as f32 + 0.5, -(i as f32)])).collect();
        let packs = <VecN<3> as LaneElement>::gather(&row, 2);
        for (c, pack) in packs.iter().enumerate() {
            for i in 0..LANES {
                assert_eq!(pack.lane(i), row[2 + i].0[c], "component {c} lane {i}");
            }
        }
        let mut out = vec![VecN::<3>::default(); LANES + 4];
        <VecN<3> as LaneElement>::scatter(packs, &mut out, 2);
        assert_eq!(&out[2..2 + LANES], &row[2..2 + LANES]);
    }

    #[test]
    fn rtm_stage_lanes_bit_exact_vs_scalar_apply() {
        use crate::rtm::RtmParams;
        let stages = RtmStage::pipeline(RtmParams::default());
        let f = |x: i32, y: i32, z: i32, c: usize| {
            (((x * 3 + y * 5 + z * 7 + c as i32) % 17) as f32) * 0.01 + 0.1
        };
        for (si, stage) in stages.iter().enumerate() {
            let lanes = stage.apply_lanes(&|dx, dy, dz| {
                let mut packs = [F32xL::default(); RTM_PACKED_LANES];
                for (c, pack) in packs.iter_mut().enumerate() {
                    let mut v = [0.0f32; LANES];
                    for (i, lane) in v.iter_mut().enumerate() {
                        *lane = f(i as i32 + dx, dy, dz, c);
                    }
                    *pack = F32xL(v);
                }
                packs
            });
            for i in 0..LANES {
                let scalar: RtmPacked = stage.apply(|dx, dy, dz| {
                    let mut v = VecN::<RTM_PACKED_LANES>::default();
                    for c in 0..RTM_PACKED_LANES {
                        v.0[c] = f(i as i32 + dx, dy, dz, c);
                    }
                    v
                });
                for (c, pack) in lanes.iter().enumerate() {
                    assert_eq!(
                        pack.lane(i).to_bits(),
                        scalar.0[c].to_bits(),
                        "stage {si} component {c} lane {i}"
                    );
                }
            }
        }
    }
}
