//! Vendored minimal benchmark harness with a `criterion`-compatible API
//! for offline builds. Supports the surface this workspace's benches use:
//! `Criterion::{bench_function, benchmark_group}`, groups with
//! `sample_size`/`throughput`/`bench_function`/`bench_with_input`/`finish`,
//! `Bencher::iter`, `BenchmarkId`, `Throughput`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is deliberately simple — median of `sample_size` timed
//! samples, each auto-calibrated to run ≥ ~5 ms of iterations — with a
//! one-line report per benchmark. No plots, no statistics beyond median
//! and sample spread, no baseline storage.
//!
//! Passing `--output-format bencher` (the flag real criterion accepts for
//! CI interchange) switches the per-benchmark report to libtest-bencher
//! lines — `test <name> ... bench: <ns> ns/iter (+/- <dev>)` — which CI
//! jobs can parse or archive directly.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Work-per-iteration declaration, used to report throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Benchmark identifier: `function_id/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<P: core::fmt::Display>(function_id: &str, parameter: P) -> Self {
        BenchmarkId { id: format!("{function_id}/{parameter}") }
    }

    pub fn from_parameter<P: core::fmt::Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Measured nanoseconds per iteration, recorded by [`Bencher::iter`].
    ns_per_iter: f64,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: grow the batch until one timed batch costs >= 5 ms.
        let mut batch: u64 = 1;
        let batch_ns = loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let ns = t0.elapsed().as_nanos() as u64;
            if ns >= 5_000_000 || batch >= 1 << 20 {
                break ns.max(1);
            }
            batch *= 2;
        };
        self.ns_per_iter = batch_ns as f64 / batch as f64;
    }
}

fn fmt_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Median and half-spread ((max − min) / 2) of the timed samples.
fn run_samples(sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) -> (f64, f64) {
    let mut samples: Vec<f64> = (0..sample_size.max(1))
        .map(|_| {
            let mut b = Bencher { ns_per_iter: 0.0 };
            f(&mut b);
            b.ns_per_iter
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = samples[samples.len() / 2];
    let dev = (samples[samples.len() - 1] - samples[0]) / 2.0;
    (median, dev)
}

/// Whether `--output-format bencher` was passed to this bench binary.
fn bencher_output() -> bool {
    static MODE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *MODE.get_or_init(|| {
        let args: Vec<String> = std::env::args().collect();
        args.windows(2).any(|w| w[0] == "--output-format" && w[1] == "bencher")
    })
}

fn report(name: &str, median_ns: f64, dev_ns: f64, throughput: Option<Throughput>) {
    if bencher_output() {
        // libtest-bencher interchange line; whitespace in names breaks
        // downstream parsers, so normalize to underscores.
        let name = name.replace(' ', "_");
        println!(
            "test {name} ... bench: {:>11} ns/iter (+/- {})",
            median_ns.round() as u64,
            dev_ns.round() as u64
        );
        return;
    }
    let thr = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:.1} Melem/s", n as f64 / median_ns * 1e3)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  {:.1} MiB/s", n as f64 / median_ns * 1e9 / (1024.0 * 1024.0))
        }
        None => String::new(),
    };
    println!("{name:<50} time: {}{thr}", fmt_time(median_ns));
}

/// Named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _c: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let (median, dev) = run_samples(self.sample_size, &mut f);
        report(&format!("{}/{id}", self.name), median, dev, self.throughput);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let (median, dev) = run_samples(self.sample_size, &mut |b: &mut Bencher| f(b, input));
        report(&format!("{}/{}", self.name, id.id), median, dev, self.throughput);
        self
    }

    pub fn finish(&mut self) {}
}

/// Top-level harness handle (subset of `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), sample_size: 10, throughput: None, _c: self }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let (median, dev) = run_samples(10, &mut f);
        report(id, median, dev, None);
        self
    }
}

/// Collect benchmark functions into a runner (subset of `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let _ = $cfg;
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point for `harness = false` bench binaries.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs bench binaries with `--test`; a benchmark
            // sweep inside the test run would dominate wall time, so only
            // run when invoked as an actual benchmark.
            let args: Vec<String> = std::env::args().collect();
            if args.iter().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher { ns_per_iter: 0.0 };
        b.iter(|| (0..1000u64).sum::<u64>());
        assert!(b.ns_per_iter > 0.0);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }

    #[test]
    fn samples_report_median_and_nonnegative_spread() {
        let (median, dev) = run_samples(3, &mut |b: &mut Bencher| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        assert!(median > 0.0);
        assert!(dev >= 0.0);
    }
}
