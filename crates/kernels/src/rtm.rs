//! Reverse Time Migration (RTM) forward pass — the paper's third application
//! (§V-C, Algorithm 1).
//!
//! The paper's RTM kernel comes from NAG Ltd. and is proprietary; only its
//! *shape* is published:
//!
//! * 3D state arrays `Y`, `T`, `K1..K4` of **vector elements of size 6**
//!   (single precision),
//! * a PML right-hand side `f_pml` using a **25-point, 8th-order star
//!   stencil** plus two scalar coefficient meshes `ρ` and `μ` accessed with
//!   self-stencils,
//! * a classic RK4 time step (Algorithm 1),
//! * after loop fusion: **4 stages in a single pipeline**, with `T`/`K`
//!   traffic replaced by on-chip FIFO/window streams so external traffic is
//!   one read + one write of `Y` and one read each of `ρ`, `μ`,
//! * total fused arithmetic of `G_dsp ≈ 2444` DSP blocks, which at `V = 1`
//!   admits an unroll factor `p = 3` on the U280 (one RK4 stage set per SLR).
//!
//! We substitute a *synthetic but physically-sensible* acoustic system with
//! PML-style sponge damping (Clayton–Engquist-flavoured absorbing terms) that
//! matches every published property: the state is
//! `U = (p, q, vx, vy, vz, ψ)` with
//!
//! ```text
//! dp/dt  = μ·∇²q  + ρ·ψ                − σ·p
//! dq/dt  = μ·∇²p  − ρ·(vx + vy + vz)   − σ·q
//! dvi/dt = ρ·∂i p + σ₂·ψ               − σ·vi      (i = x, y, z)
//! dψ/dt  = μ·∇²ψ + σ·(p + q)           − σ₂·ψ
//! ```
//!
//! where `∇²` is the 8th-order 25-point star Laplacian and `∂i` the
//! 8th-order first derivative. The fused op count (4 RK4 stages, see
//! [`fused_op_count`]) is 1974 DSPs — the same resource band as the paper's
//! 2444, and crucially on the same side of the `p = 3` vs `p = 4` boundary
//! (`⌊0.9·8490/1974⌋ = 3`).
//!
//! ## Fused-stream representation
//!
//! To run all four RK4 stages in one dataflow pipeline (and bit-exactly in
//! the golden reference) each stage is a [`StencilOp3D`] over a *packed*
//! 20-lane element carrying `(Y, T, Yacc, ρ, μ)`:
//!
//! * lanes `0..6` — `Y`, the state at the start of the time step,
//! * lanes `6..12` — `T`, the current RK stage input (`T = Y` initially),
//! * lanes `12..18` — `Yacc`, the running RK4 combination
//!   `Y + K1/6 + K2/3 + …`,
//! * lane `18` — `ρ`, lane `19` — `μ`.
//!
//! Stage `k ∈ {1,2,3}` computes `K = dt·f_pml(T₂₅pt, ρ, μ)` and emits
//! `T' = Y + a_k·K`, `Yacc' = Yacc + b_k·K`. Stage 4 finalizes:
//! `Y_new = Yacc + b₄·K` is written to *all three* state slots so unrolled
//! iterations chain without a repack. This mirrors the paper exactly:
//! "Intermediate data T and K1..K4 were replaced with a FIFO stream connected
//! through window buffers. Similarly ρ, μ and Y were internally buffered and
//! fed to subsequent compute units."

use crate::domain::AbstractValue;
use crate::op3d::StencilOp3D;
use crate::ops::OpCount;
use serde::{Deserialize, Serialize};
use sf_mesh::{Mesh3D, VecN};

/// Number of state lanes (the paper's "vector elements of size 6").
pub const RTM_LANES: usize = 6;
/// Lanes of the packed fused-pipeline element: Y(6) + T(6) + Yacc(6) + ρ + μ.
pub const RTM_PACKED_LANES: usize = 20;

/// The 6-lane RTM state element.
pub type RtmState = VecN<RTM_LANES>;
/// The 20-lane packed stream element used by the fused pipeline.
pub type RtmPacked = VecN<RTM_PACKED_LANES>;

/// Lane indices within the 6-lane state.
pub mod lane {
    /// Pressure-like primary field.
    pub const P: usize = 0;
    /// Auxiliary wave field.
    pub const Q: usize = 1;
    /// x-velocity.
    pub const VX: usize = 2;
    /// y-velocity.
    pub const VY: usize = 3;
    /// z-velocity.
    pub const VZ: usize = 4;
    /// PML damping accumulator.
    pub const PSI: usize = 5;
}

/// Offsets of the packed sections.
pub mod packed {
    /// Start of the `Y` lanes.
    pub const Y: usize = 0;
    /// Start of the `T` lanes.
    pub const T: usize = 6;
    /// Start of the `Yacc` lanes.
    pub const ACC: usize = 12;
    /// ρ lane.
    pub const RHO: usize = 18;
    /// μ lane.
    pub const MU: usize = 19;
}

/// 8th-order central second-derivative weights `w0, w1..w4`
/// (`w0 = −205/72`, symmetric).
pub const W2: [f32; 5] = [-205.0 / 72.0, 8.0 / 5.0, -1.0 / 5.0, 8.0 / 315.0, -1.0 / 560.0];

/// 8th-order central first-derivative weights `w1..w4` (antisymmetric).
pub const W1: [f32; 4] = [4.0 / 5.0, -1.0 / 5.0, 4.0 / 105.0, -1.0 / 280.0];

/// RK4 stage coefficients: `T' = Y + a_k·K`.
pub const RK_A: [f32; 4] = [0.5, 0.5, 1.0, 0.0];
/// RK4 stage coefficients: `Yacc' = Yacc + b_k·K`.
pub const RK_B: [f32; 4] = [1.0 / 6.0, 1.0 / 3.0, 1.0 / 3.0, 1.0 / 6.0];

/// Time step and damping parameters of the synthetic PML system.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RtmParams {
    /// RK4 time step `dt` (Algorithm 1 multiplies `f_pml` by `dt`).
    pub dt: f32,
    /// Primary sponge damping coefficient σ.
    pub sigma: f32,
    /// Secondary (ψ-channel) damping coefficient σ₂.
    pub sigma2: f32,
}

impl Default for RtmParams {
    fn default() -> Self {
        // Stable for |μ| ≤ 0.05, |ρ| ≤ 1 meshes (CFL margin ≈ 4× at dt=1e-3
        // given the ∇² weight sum ≈ 8.54 per dim).
        RtmParams { dt: 1e-3, sigma: 0.05, sigma2: 0.02 }
    }
}

/// The PML right-hand side `f_pml(U₂₅pt, ρ, μ)` evaluated on the `T` section
/// of a packed neighborhood accessor. Returns `dU/dt` (6 lanes), **not** yet
/// scaled by `dt`.
///
/// The floating-point evaluation order is fixed so every executor computes
/// bit-identical results.
#[inline]
pub fn f_pml<F: Fn(i32, i32, i32) -> RtmPacked>(
    at: &F,
    rho: f32,
    mu: f32,
    prm: &RtmParams,
) -> [f32; 6] {
    f_pml_abs::<f32, _>(&|dx, dy, dz| at(dx, dy, dz).0, rho, mu, prm)
}

/// [`f_pml`] written once, generically over the value domain (see
/// [`crate::domain`]): the `f32` instantiation *is* the concrete kernel; an
/// abstract domain sees exactly the operations the datapath executes. The
/// `3·w0` center weight is a compile-time constant and folds before entering
/// the domain — one counted multiply, as in the synthesized pipeline.
#[inline]
pub fn f_pml_abs<V: AbstractValue, F: Fn(i32, i32, i32) -> [V; RTM_PACKED_LANES]>(
    at: &F,
    rho: V,
    mu: V,
    prm: &RtmParams,
) -> [V; RTM_LANES] {
    #[inline(always)]
    fn t<V: AbstractValue>(
        at: &impl Fn(i32, i32, i32) -> [V; RTM_PACKED_LANES],
        dx: i32,
        dy: i32,
        dz: i32,
        c: usize,
    ) -> V {
        at(dx, dy, dz)[packed::T + c]
    }

    // 25-point star Laplacian of component `c`.
    #[inline(always)]
    fn lap8<V: AbstractValue>(at: &impl Fn(i32, i32, i32) -> [V; RTM_PACKED_LANES], c: usize) -> V {
        let mut acc = V::constant(3.0 * W2[0]) * t(at, 0, 0, 0, c);
        for d in 1..=4i32 {
            acc = acc + V::constant(W2[d as usize]) * (t(at, d, 0, 0, c) + t(at, -d, 0, 0, c));
        }
        for d in 1..=4i32 {
            acc = acc + V::constant(W2[d as usize]) * (t(at, 0, d, 0, c) + t(at, 0, -d, 0, c));
        }
        for d in 1..=4i32 {
            acc = acc + V::constant(W2[d as usize]) * (t(at, 0, 0, d, c) + t(at, 0, 0, -d, c));
        }
        acc
    }

    // 8th-order first derivative of component `c` along `axis` (0=x,1=y,2=z).
    // The d = 1 term seeds the accumulator: 4 muls + 7 adds, matching
    // [`f_pml_op_count`].
    #[inline(always)]
    fn d1<V: AbstractValue>(
        at: &impl Fn(i32, i32, i32) -> [V; RTM_PACKED_LANES],
        c: usize,
        axis: usize,
    ) -> V {
        let off = |d: i32| -> (i32, i32, i32) {
            match axis {
                0 => (d, 0, 0),
                1 => (0, d, 0),
                _ => (0, 0, d),
            }
        };
        let term = |d: i32| -> V {
            let (px, py, pz) = off(d);
            let (mx, my, mz) = off(-d);
            V::constant(W1[d as usize - 1]) * (t(at, px, py, pz, c) - t(at, mx, my, mz, c))
        };
        let mut acc = term(1);
        for d in 2..=4i32 {
            acc = acc + term(d);
        }
        acc
    }

    let ctr = at(0, 0, 0);
    let p = ctr[packed::T + lane::P];
    let q = ctr[packed::T + lane::Q];
    let vx = ctr[packed::T + lane::VX];
    let vy = ctr[packed::T + lane::VY];
    let vz = ctr[packed::T + lane::VZ];
    let psi = ctr[packed::T + lane::PSI];

    let lp = lap8(at, lane::P);
    let lq = lap8(at, lane::Q);
    let lpsi = lap8(at, lane::PSI);
    let dx_p = d1(at, lane::P, 0);
    let dy_p = d1(at, lane::P, 1);
    let dz_p = d1(at, lane::P, 2);

    let sg = V::constant(prm.sigma);
    let sg2 = V::constant(prm.sigma2);

    let dp = mu * lq + rho * psi - sg * p;
    let dq = mu * lp - rho * ((vx + vy) + vz) - sg * q;
    let dvx = rho * dx_p + sg2 * psi - sg * vx;
    let dvy = rho * dy_p + sg2 * psi - sg * vy;
    let dvz = rho * dz_p + sg2 * psi - sg * vz;
    let dpsi = mu * lpsi + sg * (p + q) - sg2 * psi;

    [dp, dq, dvx, dvy, dvz, dpsi]
}

/// Arithmetic ops of one `f_pml` evaluation.
pub const fn f_pml_op_count() -> OpCount {
    // 3 × lap8 (13 muls, 24 adds each), 3 × d1 (4 muls, 7 adds each),
    // pointwise: dp (3m,2a) + dq (3m,4a) + 3×dv (3m,2a) + dpsi (3m,3a)
    OpCount::new(24 * 3 + 7 * 3 + 2 + 4 + 3 * 2 + 3, 13 * 3 + 4 * 3 + 3 + 3 + 3 * 3 + 3, 0)
}

/// Arithmetic ops of one fused RK4 stage `k ∈ {1,2,3}`
/// (`f_pml` + `K = dt·f` + `T' = Y + a·K` + `Yacc' = Yacc + b·K`).
pub const fn stage_op_count() -> OpCount {
    f_pml_op_count().plus(OpCount::new(12, 18, 0))
}

/// Arithmetic ops of the final stage 4 (`f_pml` + `K = dt·f` +
/// `Y_new = Yacc + b₄·K`).
pub const fn final_stage_op_count() -> OpCount {
    f_pml_op_count().plus(OpCount::new(6, 12, 0))
}

/// Total fused-pipeline ops for one complete RK4 time step — the `G_dsp`
/// driver for the analytic model (paper: 2444; ours: 1974).
pub const fn fused_op_count() -> OpCount {
    stage_op_count().times(3).plus(final_stage_op_count())
}

/// One fused RK4 stage as a radius-4 stencil over the packed stream.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct RtmStage {
    /// Stage index `1..=4`.
    pub stage: usize,
    /// Physics/time-step parameters.
    pub params: RtmParams,
}

impl RtmStage {
    /// Construct stage `stage ∈ 1..=4`.
    pub fn new(stage: usize, params: RtmParams) -> Self {
        assert!((1..=4).contains(&stage), "RK4 stage must be 1..=4");
        RtmStage { stage, params }
    }

    /// The full 4-stage pipeline for one RK4 time step.
    pub fn pipeline(params: RtmParams) -> Vec<RtmStage> {
        (1..=4).map(|s| RtmStage::new(s, params)).collect()
    }

    /// The single copy of the fused-stage math, generic over the value
    /// domain: `K = dt·f_pml(T)`, then `T' = Y + a·K`, `Yacc' = Yacc + b·K`
    /// (stage 4 finalizes `Y_new = Yacc + b₄·K` into all three slots).
    /// [`StencilOp3D::apply`] delegates here at `V = f32`.
    #[inline]
    #[allow(clippy::needless_range_loop)] // `c` indexes three parallel lane sections
    pub fn update_packed<V, F>(&self, at: &F) -> [V; RTM_PACKED_LANES]
    where
        V: AbstractValue,
        F: Fn(i32, i32, i32) -> [V; RTM_PACKED_LANES],
    {
        let ctr = at(0, 0, 0);
        let rho = ctr[packed::RHO];
        let mu = ctr[packed::MU];
        let du = f_pml_abs(at, rho, mu, &self.params);

        let mut out = ctr;
        let a = V::constant(RK_A[self.stage - 1]);
        let b = V::constant(RK_B[self.stage - 1]);
        let dt = V::constant(self.params.dt);
        if self.stage < 4 {
            for c in 0..RTM_LANES {
                let k = du[c] * dt;
                out[packed::T + c] = ctr[packed::Y + c] + a * k;
                out[packed::ACC + c] = ctr[packed::ACC + c] + b * k;
            }
        } else {
            // finalize: Y_new into all three state slots so unrolled
            // iterations chain without a repack stage
            for c in 0..RTM_LANES {
                let k = du[c] * dt;
                let y_new = ctr[packed::ACC + c] + b * k;
                out[packed::Y + c] = y_new;
                out[packed::T + c] = y_new;
                out[packed::ACC + c] = y_new;
            }
        }
        out
    }
}

impl StencilOp3D<RtmPacked> for RtmStage {
    fn radius(&self) -> usize {
        4 // order D = 8
    }

    #[inline]
    fn apply<F: Fn(i32, i32, i32) -> RtmPacked>(&self, at: F) -> RtmPacked {
        VecN(self.update_packed::<f32, _>(&|dx, dy, dz| at(dx, dy, dz).0))
    }

    /// Boundary cells take `K = 0`: stages 1–3 emit `T' = Y`, stage 4 emits
    /// `Y_new = Yacc` into all slots.
    fn on_boundary(&self, center: RtmPacked) -> RtmPacked {
        let mut out = center;
        if self.stage < 4 {
            for c in 0..RTM_LANES {
                out.0[packed::T + c] = center.0[packed::Y + c];
            }
        } else {
            for c in 0..RTM_LANES {
                let y_new = center.0[packed::ACC + c];
                out.0[packed::Y + c] = y_new;
                out.0[packed::T + c] = y_new;
                out.0[packed::ACC + c] = y_new;
            }
        }
        out
    }
}

/// Pack `(Y, ρ, μ)` meshes into the fused-stream representation
/// (`T = Yacc = Y`).
pub fn pack(y: &Mesh3D<RtmState>, rho: &Mesh3D<f32>, mu: &Mesh3D<f32>) -> Mesh3D<RtmPacked> {
    assert_eq!((y.nx(), y.ny(), y.nz()), (rho.nx(), rho.ny(), rho.nz()));
    assert_eq!((y.nx(), y.ny(), y.nz()), (mu.nx(), mu.ny(), mu.nz()));
    Mesh3D::from_fn(y.nx(), y.ny(), y.nz(), |x, yy, z| {
        let s = y.get(x, yy, z);
        let mut e = RtmPacked::default();
        for c in 0..RTM_LANES {
            e.0[packed::Y + c] = s.0[c];
            e.0[packed::T + c] = s.0[c];
            e.0[packed::ACC + c] = s.0[c];
        }
        e.0[packed::RHO] = rho.get(x, yy, z);
        e.0[packed::MU] = mu.get(x, yy, z);
        e
    })
}

/// Extract the state (`Y` lanes) from a packed mesh.
pub fn unpack(packed_mesh: &Mesh3D<RtmPacked>) -> Mesh3D<RtmState> {
    Mesh3D::from_fn(packed_mesh.nx(), packed_mesh.ny(), packed_mesh.nz(), |x, y, z| {
        let e = packed_mesh.get(x, y, z);
        let mut s = RtmState::default();
        for c in 0..RTM_LANES {
            s.0[c] = e.0[packed::Y + c];
        }
        s
    })
}

/// A deterministic, physically-plausible RTM workload: a Gaussian pressure
/// pulse in the mesh center, smooth ρ and μ coefficient fields. Returns
/// `(Y, ρ, μ)`.
pub fn demo_workload(
    nx: usize,
    ny: usize,
    nz: usize,
) -> (Mesh3D<RtmState>, Mesh3D<f32>, Mesh3D<f32>) {
    let (cx, cy, cz) = (nx as f32 / 2.0, ny as f32 / 2.0, nz as f32 / 2.0);
    let y = Mesh3D::from_fn(nx, ny, nz, |x, yy, z| {
        let r2 = (x as f32 - cx).powi(2) + (yy as f32 - cy).powi(2) + (z as f32 - cz).powi(2);
        let pulse = (-r2 / (nx as f32)).exp();
        let mut s = RtmState::default();
        s.0[lane::P] = pulse;
        s.0[lane::Q] = 0.5 * pulse;
        s
    });
    let rho = Mesh3D::from_fn(nx, ny, nz, |x, _, _| 0.9 + 0.2 * (x as f32 / nx as f32));
    let mu = Mesh3D::from_fn(nx, ny, nz, |_, yy, _| 0.02 + 0.01 * (yy as f32 / ny as f32));
    (y, rho, mu)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zero_at() -> impl Fn(i32, i32, i32) -> RtmPacked {
        |_, _, _| RtmPacked::default()
    }

    #[test]
    fn f_pml_of_zero_is_zero() {
        let at = zero_at();
        let du = f_pml(&at, 1.0, 0.02, &RtmParams::default());
        assert_eq!(du, [0.0; 6]);
    }

    #[test]
    fn f_pml_constant_field_laplacian_vanishes() {
        // lap8 weights sum to 0 per dimension up to fp rounding; with a
        // constant T field only the pointwise damping terms survive.
        let mut e = RtmPacked::default();
        for c in 0..RTM_LANES {
            e.0[packed::T + c] = 1.0;
        }
        let at = move |_: i32, _: i32, _: i32| e;
        let prm = RtmParams { dt: 1e-3, sigma: 0.1, sigma2: 0.05 };
        let du = f_pml(&at, 2.0, 1.0, &prm);
        // dp = mu*lq + rho*psi - sigma*p ≈ 0 + 2 - 0.1
        assert!((du[0] - 1.9).abs() < 1e-4, "dp = {}", du[0]);
        // dq = mu*lp - rho*3 - sigma*q ≈ -6 - 0.1
        assert!((du[1] + 6.1).abs() < 1e-4, "dq = {}", du[1]);
        // dvx = rho*0 + sigma2*psi - sigma*vx = 0.05 - 0.1
        assert!((du[2] + 0.05).abs() < 1e-4, "dvx = {}", du[2]);
        // dpsi = mu*0 + sigma*2 - sigma2 = 0.2 - 0.05
        assert!((du[5] - 0.15).abs() < 1e-4, "dpsi = {}", du[5]);
    }

    #[test]
    fn lap8_weights_second_derivative_of_quadratic() {
        // T.p = x² → ∇²p = 2 exactly (8th-order scheme is exact on x²)
        let at = |dx: i32, _dy: i32, _dz: i32| {
            let mut e = RtmPacked::default();
            let x = dx as f32;
            e.0[packed::T + lane::Q] = x * x;
            e
        };
        let prm = RtmParams { dt: 1.0, sigma: 0.0, sigma2: 0.0 };
        // dp = mu * lap(q): with mu = 1 → should be ≈ 2
        let du = f_pml(&at, 0.0, 1.0, &prm);
        assert!((du[0] - 2.0).abs() < 1e-3, "lap8(x²) = {}", du[0]);
    }

    #[test]
    fn d1_weights_first_derivative_of_linear() {
        // T.p = 3x → ∂x p = 3 exactly
        let at = |dx: i32, _dy: i32, _dz: i32| {
            let mut e = RtmPacked::default();
            e.0[packed::T + lane::P] = 3.0 * dx as f32;
            e
        };
        let prm = RtmParams { dt: 1.0, sigma: 0.0, sigma2: 0.0 };
        // dvx = rho * d1x(p): rho = 1 → 3
        let du = f_pml(&at, 1.0, 0.0, &prm);
        assert!((du[2] - 3.0).abs() < 1e-4, "d1(3x) = {}", du[2]);
        // y and z derivatives of a pure-x field vanish
        assert!(du[3].abs() < 1e-4 && du[4].abs() < 1e-4);
    }

    #[test]
    fn op_counts_match_hand_derivation() {
        let f = f_pml_op_count();
        assert_eq!(f, OpCount::new(108, 69, 0));
        assert_eq!(stage_op_count(), OpCount::new(120, 87, 0));
        assert_eq!(final_stage_op_count(), OpCount::new(114, 81, 0));
        let fused = fused_op_count();
        assert_eq!(fused, OpCount::new(474, 342, 0));
        // The G_dsp band that admits p = 3 at V = 1 on the U280
        // (0.9·8490/4 < G_dsp ≤ 0.9·8490/3):
        let g = fused.dsp();
        assert_eq!(g, 1974);
        assert!(g > 7641 / 4 && g <= 7641 / 3);
    }

    #[test]
    fn stage_boundary_semantics() {
        let prm = RtmParams::default();
        let mut e = RtmPacked::default();
        for c in 0..RTM_LANES {
            e.0[packed::Y + c] = 1.0 + c as f32;
            e.0[packed::T + c] = 100.0;
            e.0[packed::ACC + c] = 10.0 + c as f32;
        }
        let s1 = RtmStage::new(1, prm);
        let b1 = s1.on_boundary(e);
        for c in 0..RTM_LANES {
            assert_eq!(b1.0[packed::T + c], 1.0 + c as f32, "T reset to Y");
            assert_eq!(b1.0[packed::ACC + c], 10.0 + c as f32, "Yacc unchanged");
        }
        let s4 = RtmStage::new(4, prm);
        let b4 = s4.on_boundary(e);
        for c in 0..RTM_LANES {
            assert_eq!(b4.0[packed::Y + c], 10.0 + c as f32);
            assert_eq!(b4.0[packed::T + c], 10.0 + c as f32);
            assert_eq!(b4.0[packed::ACC + c], 10.0 + c as f32);
        }
    }

    #[test]
    fn stage4_finalizes_all_slots_identically() {
        let prm = RtmParams::default();
        let mut e = RtmPacked::default();
        e.0[packed::T + lane::P] = 0.5;
        e.0[packed::ACC + lane::P] = 2.0;
        e.0[packed::RHO] = 1.0;
        e.0[packed::MU] = 0.02;
        let at = move |_: i32, _: i32, _: i32| e;
        let out = RtmStage::new(4, prm).apply(at);
        for c in 0..RTM_LANES {
            assert_eq!(out.0[packed::Y + c], out.0[packed::T + c]);
            assert_eq!(out.0[packed::Y + c], out.0[packed::ACC + c]);
        }
    }

    #[test]
    #[should_panic(expected = "RK4 stage must be 1..=4")]
    fn stage_index_validated() {
        let _ = RtmStage::new(5, RtmParams::default());
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let (y, rho, mu) = demo_workload(8, 8, 8);
        let pk = pack(&y, &rho, &mu);
        assert_eq!(pk.get(3, 4, 5).0[packed::RHO], rho.get(3, 4, 5));
        assert_eq!(pk.get(3, 4, 5).0[packed::MU], mu.get(3, 4, 5));
        let back = unpack(&pk);
        assert_eq!(back, y);
    }

    #[test]
    fn pipeline_has_four_stages_radius_4() {
        let p = RtmStage::pipeline(RtmParams::default());
        assert_eq!(p.len(), 4);
        for (i, s) in p.iter().enumerate() {
            assert_eq!(s.stage, i + 1);
            assert_eq!(s.radius(), 4);
        }
    }

    #[test]
    fn demo_workload_is_centered_pulse() {
        let (y, rho, mu) = demo_workload(16, 16, 16);
        let c = y.get(8, 8, 8).0[lane::P];
        let edge = y.get(0, 0, 0).0[lane::P];
        assert!(c > edge, "pulse must peak at the center");
        assert!(rho.all_finite() && mu.all_finite());
        assert!(y.get(8, 8, 8).0[lane::VX] == 0.0);
    }
}
