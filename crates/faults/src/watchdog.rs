//! Cycle-budget watchdog: deadlock/livelock detection with a structured
//! diagnosis instead of a hang.
//!
//! The dataflow simulator reports forward progress (stream units emitted)
//! as model cycles advance. If no progress is observed within the budget,
//! [`Watchdog::check`] returns a [`WatchdogTrip`] describing *where* the
//! pipeline wedged, enriched with PR 1's stall attribution when available.

use serde::{Deserialize, Serialize};
use sf_telemetry::{StallBreakdown, StallClass};

/// Structured deadlock diagnosis produced when the watchdog fires.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WatchdogTrip {
    /// Model cycle at which progress was last observed.
    pub last_progress_cycle: u64,
    /// Model cycle at which the trip was detected.
    pub tripped_at_cycle: u64,
    /// The configured no-progress budget, in cycles.
    pub budget_cycles: u64,
    /// Stream units (rows/planes) emitted before the wedge.
    pub units_emitted: u64,
    /// Stream units the run was expected to emit.
    pub units_expected: u64,
    /// Dominant stall class from telemetry attribution, if recorded.
    pub dominant_stall: Option<String>,
    /// Human-readable site detail (e.g. "stage 3 starved: stream ended
    /// after 17/24 rows").
    pub detail: String,
}

impl WatchdogTrip {
    /// Fold a telemetry stall breakdown into the diagnosis.
    pub fn with_stalls(mut self, stalls: &StallBreakdown) -> Self {
        if stalls.total() > 0 {
            let name = match stalls.dominant() {
                StallClass::Compute => "compute",
                StallClass::Memory => "memory",
                StallClass::Backpressure => "backpressure",
                StallClass::Checkpoint => "checkpoint",
                StallClass::Exchange => "exchange",
            };
            self.dominant_stall = Some(name.to_string());
        }
        self
    }
}

impl core::fmt::Display for WatchdogTrip {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "watchdog: no forward progress for {} cycles (last progress at cycle {}, \
             tripped at cycle {}); {}/{} units emitted",
            self.budget_cycles,
            self.last_progress_cycle,
            self.tripped_at_cycle,
            self.units_emitted,
            self.units_expected
        )?;
        if let Some(s) = &self.dominant_stall {
            write!(f, "; dominant stall: {s}")?;
        }
        if !self.detail.is_empty() {
            write!(f, "; {}", self.detail)?;
        }
        Ok(())
    }
}

impl std::error::Error for WatchdogTrip {}

/// Forward-progress monitor with a fixed cycle budget.
#[derive(Clone, Debug)]
pub struct Watchdog {
    budget_cycles: u64,
    units_expected: u64,
    units_emitted: u64,
    last_progress_cycle: u64,
}

impl Watchdog {
    /// A watchdog allowing at most `budget_cycles` between progress events,
    /// expecting `units_expected` stream units in total.
    pub fn new(budget_cycles: u64, units_expected: u64) -> Self {
        Watchdog {
            budget_cycles: budget_cycles.max(1),
            units_expected,
            units_emitted: 0,
            last_progress_cycle: 0,
        }
    }

    /// The configured budget in cycles.
    pub fn budget_cycles(&self) -> u64 {
        self.budget_cycles
    }

    /// Units emitted so far.
    pub fn units_emitted(&self) -> u64 {
        self.units_emitted
    }

    /// Record forward progress (`units` stream units emitted) at `cycle`.
    pub fn observe(&mut self, cycle: u64, units: u64) {
        self.units_emitted += units;
        if cycle > self.last_progress_cycle {
            self.last_progress_cycle = cycle;
        }
    }

    /// Check for a wedge at `cycle`. Returns the trip if the budget has
    /// elapsed without progress.
    pub fn check(&self, cycle: u64, detail: &str) -> Result<(), WatchdogTrip> {
        if cycle.saturating_sub(self.last_progress_cycle) <= self.budget_cycles {
            return Ok(());
        }
        Err(WatchdogTrip {
            last_progress_cycle: self.last_progress_cycle,
            tripped_at_cycle: cycle,
            budget_cycles: self.budget_cycles,
            units_emitted: self.units_emitted,
            units_expected: self.units_expected,
            dominant_stall: None,
            detail: detail.to_string(),
        })
    }

    /// End-of-run check: the stream completed only if every expected unit
    /// was emitted; a short stream is a starvation wedge even if cycles
    /// kept advancing.
    pub fn finish(&self, cycle: u64, detail: &str) -> Result<(), WatchdogTrip> {
        if self.units_emitted >= self.units_expected {
            return Ok(());
        }
        Err(WatchdogTrip {
            last_progress_cycle: self.last_progress_cycle,
            tripped_at_cycle: cycle,
            budget_cycles: self.budget_cycles,
            units_emitted: self.units_emitted,
            units_expected: self.units_expected,
            dominant_stall: None,
            detail: detail.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_progress_never_trips() {
        let mut w = Watchdog::new(100, 10);
        for i in 0..10u64 {
            w.observe(i * 50, 1);
            assert!(w.check(i * 50 + 40, "").is_ok());
        }
        assert!(w.finish(500, "").is_ok());
    }

    #[test]
    fn stalled_pipeline_trips_with_diagnosis() {
        let mut w = Watchdog::new(100, 10);
        w.observe(10, 3);
        let err = w.check(200, "stage 1 starved").unwrap_err();
        assert_eq!(err.last_progress_cycle, 10);
        assert_eq!(err.tripped_at_cycle, 200);
        assert_eq!(err.units_emitted, 3);
        assert_eq!(err.units_expected, 10);
        let msg = err.to_string();
        assert!(msg.contains("no forward progress"), "{msg}");
        assert!(msg.contains("stage 1 starved"), "{msg}");
    }

    #[test]
    fn short_stream_fails_finish() {
        let mut w = Watchdog::new(1000, 24);
        w.observe(100, 17);
        let err = w.finish(150, "stream ended early").unwrap_err();
        assert_eq!(err.units_emitted, 17);
        assert!(err.to_string().contains("17/24"));
    }

    #[test]
    fn stall_attribution_enriches_trip() {
        let stalls = StallBreakdown {
            backpressure_cycles: 500,
            memory_cycles: 10,
            ..StallBreakdown::default()
        };
        let w = Watchdog::new(10, 4);
        let trip = w.check(100, "").unwrap_err().with_stalls(&stalls);
        assert_eq!(trip.dominant_stall.as_deref(), Some("backpressure"));
        assert!(trip.to_string().contains("dominant stall: backpressure"));
    }
}
