//! Property-based cross-crate tests: randomized shapes, batch sizes, tile
//! sizes and unroll factors must never break the bit-exactness of the FPGA
//! dataflow simulator against the golden references.

use proptest::prelude::*;
use sf_core::prelude::*;
use sf_fpga::design::synthesize;
use sf_fpga::exec2d;
use sf_kernels::{reference, Poisson2D};
use sf_mesh::norms;

fn dev() -> FpgaDevice {
    FpgaDevice::u280()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Baseline simulation is bit-exact for arbitrary mesh shapes, unrolls
    /// and iteration counts.
    #[test]
    fn fpga_baseline_always_bit_exact(
        nx in 3usize..40,
        ny in 3usize..24,
        p in 1usize..7,
        iters in 1usize..14,
        seed in 0u64..500,
    ) {
        let m = Mesh2D::<f32>::random(nx, ny, seed, -1.0, 1.0);
        let wl = Workload::D2 { nx, ny, batch: 1 };
        let ds = synthesize(&dev(), &StencilSpec::poisson(), 4, p, ExecMode::Baseline, MemKind::Hbm, &wl)
            .unwrap();
        let (out, _) = exec2d::simulate_mesh_2d(&dev(), &ds, &[Poisson2D], &m, iters);
        let expect = reference::run_2d(&Poisson2D, &m, iters);
        prop_assert!(norms::bit_equal(out.as_slice(), expect.as_slice()));
    }

    /// Batched simulation equals independent solves for arbitrary batches.
    #[test]
    fn fpga_batched_always_bit_exact(
        nx in 4usize..24,
        ny in 3usize..16,
        b in 1usize..6,
        iters in 1usize..10,
        seed in 0u64..500,
    ) {
        let batch = Batch2D::<f32>::random(nx, ny, b, seed, -1.0, 1.0);
        let wl = Workload::D2 { nx, ny, batch: b };
        let ds = synthesize(
            &dev(),
            &StencilSpec::poisson(),
            4,
            3,
            ExecMode::Batched { b },
            MemKind::Hbm,
            &wl,
        )
        .unwrap();
        let (out, _) = exec2d::simulate_2d(&dev(), &ds, &[Poisson2D], &batch, iters);
        let expect = reference::run_batch_2d(&Poisson2D, &batch, iters);
        prop_assert!(norms::bit_equal(out.as_slice(), expect.as_slice()));
    }

    /// Tiled simulation is bit-exact for arbitrary tiles (≥ halo) and meshes.
    #[test]
    fn fpga_tiled_always_bit_exact(
        nx in 60usize..240,
        ny in 4usize..14,
        p in 1usize..5,
        tile_sel in 0usize..3,
        iters in 1usize..9,
        seed in 0u64..500,
    ) {
        let tile = [32usize, 48, 80][tile_sel];
        prop_assume!(tile > 2 * p); // M > pD with D = 2
        let m = Mesh2D::<f32>::random(nx, ny, seed, -1.0, 1.0);
        let wl = Workload::D2 { nx, ny, batch: 1 };
        let ds = synthesize(
            &dev(),
            &StencilSpec::poisson(),
            4,
            p,
            ExecMode::Tiled1D { tile_m: tile },
            MemKind::Ddr4,
            &wl,
        )
        .unwrap();
        let (out, _) = exec2d::simulate_mesh_2d(&dev(), &ds, &[Poisson2D], &m, iters);
        let expect = reference::run_2d(&Poisson2D, &m, iters);
        prop_assert!(
            norms::bit_equal(out.as_slice(), expect.as_slice()),
            "first mismatch: {:?}",
            norms::first_mismatch(out.as_slice(), expect.as_slice())
        );
    }

    /// The analytic plan's traffic accounting is conservative and consistent:
    /// reads ≥ writes ≥ the mesh payload per pass.
    #[test]
    fn plan_traffic_invariants(
        nx in 50usize..500,
        ny in 10usize..100,
        p in 1usize..10,
        niter in 1u64..50,
    ) {
        let wl = Workload::D2 { nx, ny, batch: 1 };
        let ds = synthesize(&dev(), &StencilSpec::poisson(), 8, p, ExecMode::Baseline, MemKind::Hbm, &wl)
            .unwrap();
        let plan = sf_fpga::cycles::plan(&dev(), &ds, &wl, niter);
        let mesh_bytes = (nx * ny * 4) as u64;
        prop_assert_eq!(plan.ext_read_bytes, plan.passes * mesh_bytes);
        prop_assert_eq!(plan.ext_write_bytes, plan.passes * mesh_bytes);
        prop_assert!(plan.total_cycles > 0);
        prop_assert!(plan.runtime_s > 0.0);
        // deeper unrolls never increase total external traffic
        prop_assert!(plan.passes <= niter);
    }

    /// DSE candidates always fit the device and improve monotonically in the
    /// ranking.
    #[test]
    fn dse_candidates_always_fit(
        nx in 32usize..400,
        ny in 32usize..400,
        niter in 10u64..5000,
    ) {
        let wf = Workflow::u280_vs_v100();
        let wl = Workload::D2 { nx, ny, batch: 1 };
        let cands = wf.explore(&StencilSpec::poisson(), &wl, niter).unwrap();
        prop_assert!(!cands.is_empty());
        let mut last = 0.0f64;
        for c in &cands {
            prop_assert!(c.design.resources.fits(&wf.device));
            prop_assert!(c.planned_runtime_s >= last);
            last = c.planned_runtime_s;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Telemetry reconciliation: for arbitrary shapes and unrolls, the
    /// recorder's "pipeline" track spans must sum to exactly the plan's
    /// total cycles, and the recorder's schedule-derived stall attribution
    /// must match `PlanTrace::stall_breakdown` class for class.
    #[test]
    fn recorder_spans_reconcile_with_cycle_plan(
        nx in 16usize..256,
        ny in 8usize..128,
        v_log2 in 0u32..4,
        p in 1usize..20,
        niter in 1u64..400,
    ) {
        let v = 1usize << v_log2;
        let d = dev();
        let spec = StencilSpec::poisson();
        let wl = Workload::D2 { nx, ny, batch: 1 };
        let ds = match synthesize(&d, &spec, v, p, ExecMode::Baseline, MemKind::Hbm, &wl) {
            Ok(ds) => ds,
            Err(_) => return Ok(()), // config exceeds device — nothing to check
        };
        let mut rec = sf_fpga::Recorder::enabled(ds.freq_mhz());
        let plan = sf_fpga::profile::trace_schedule(&d, &ds, &wl, niter, &mut rec);
        prop_assert_eq!(&plan, &sf_fpga::cycles::plan(&d, &ds, &wl, niter));

        // Pipeline track (pass spans + aggregated tail) tiles the whole run.
        let pipe = rec.find_track("pipeline").unwrap();
        prop_assert_eq!(rec.track_span_cycles(pipe), plan.total_cycles);

        // Segments track + per-pass pipeline latency tile one pass exactly.
        let tr = sf_fpga::trace::explain(&d, &ds, &wl, niter);
        let seg_cycles: u64 = tr
            .segments
            .iter()
            .map(|s| (s.data_rows + s.fill_rows) * s.row_cycles)
            .sum();
        prop_assert_eq!(
            seg_cycles + tr.pipeline_latency_cycles,
            plan.cycles_per_pass
        );

        // Stall attribution: recorder == plan trace (backpressure separate).
        let got = rec.stall_breakdown();
        let expect = tr.stall_breakdown();
        prop_assert_eq!(got.compute_cycles, expect.compute_cycles);
        prop_assert_eq!(got.memory_cycles, expect.memory_cycles);
        prop_assert_eq!(expect.backpressure_cycles, 0);
    }
}
