//! Super Logic Region (SLR) placement.
//!
//! The U280 die is three SLRs; "bandwidth within an SLR is extremely high
//! (TB/s) … while between SLRs it is limited by the number of silicon
//! connections available" (§III). The paper's RTM design is explicitly
//! floorplanned around this: "Our implementation avoids spanning of a
//! compute unit on multiple SLRs to avoid inter SLR routing congestion, by
//! setting V to 1, allowing us to fit the four fused loops in one SLR. This,
//! then allows for an iterative loop unroll factor of 3 (p) given the three
//! SLRs on the U280."
//!
//! [`place_chain`] performs the same greedy contiguous placement: pipeline
//! modules fill SLR 0, then SLR 1, then SLR 2. It reports
//!
//! * how many chain edges cross an SLR boundary (each crossing consumes
//!   scarce SLL routes and hurts timing), and
//! * whether any single module is too large for one SLR and must *span*
//!   regions — the situation the paper's designs avoid, penalized by the
//!   clock model.

use crate::device::FpgaDevice;
use serde::{Deserialize, Serialize};

/// Resource capacity of one SLR (the U280 splits its resources roughly
/// evenly across its three regions).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlrCapacity {
    /// DSP blocks per SLR.
    pub dsp: usize,
    /// BRAM36 blocks per SLR.
    pub bram: usize,
    /// URAM288 blocks per SLR.
    pub uram: usize,
}

impl SlrCapacity {
    /// Even split of a device's resources across its SLRs.
    pub fn of(dev: &FpgaDevice) -> Self {
        SlrCapacity {
            dsp: dev.dsp_total / dev.slr_count,
            bram: dev.bram_blocks / dev.slr_count,
            uram: dev.uram_blocks / dev.slr_count,
        }
    }
}

/// Per-module resource demand of one pipeline module (one unrolled
/// iteration: all fused stages and their window buffers).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModuleDemand {
    /// DSPs per module.
    pub dsp: usize,
    /// BRAM36 per module.
    pub bram: usize,
    /// URAM288 per module.
    pub uram: usize,
}

/// Result of placing a `p`-module chain onto the SLRs.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlrPlacement {
    /// SLR index of each module, in chain order.
    pub assignments: Vec<usize>,
    /// Chain edges that cross an SLR boundary.
    pub crossings: usize,
    /// Modules too large for a single SLR (must span regions).
    pub spanning_modules: usize,
}

impl SlrPlacement {
    /// Modules per SLR, for utilization reports.
    pub fn occupancy(&self, slr_count: usize) -> Vec<usize> {
        let mut occ = vec![0usize; slr_count];
        for &s in &self.assignments {
            occ[s.min(slr_count - 1)] += 1;
        }
        occ
    }
}

/// Errors from placement.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementError {
    /// The chain does not fit the die even spread across all SLRs.
    DoesNotFit {
        /// Modules placed before capacity ran out.
        placed: usize,
        /// Modules requested.
        requested: usize,
    },
}

impl core::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PlacementError::DoesNotFit { placed, requested } => {
                write!(f, "chain does not fit: placed {placed} of {requested} modules")
            }
        }
    }
}

impl std::error::Error for PlacementError {}

/// Greedily place a `p`-module chain in order across the SLRs.
///
/// A module that alone exceeds a single SLR's capacity is counted as
/// *spanning* and charged one whole SLR plus overflow into the next (the
/// U280 has no better option); otherwise modules pack contiguously.
pub fn place_chain(
    dev: &FpgaDevice,
    p: usize,
    demand: ModuleDemand,
) -> Result<SlrPlacement, PlacementError> {
    assert!(p > 0, "empty chain");
    let cap = SlrCapacity::of(dev);
    let spans_one = demand.dsp > cap.dsp || demand.bram > cap.bram || demand.uram > cap.uram;

    let mut assignments = Vec::with_capacity(p);
    let mut slr = 0usize;
    let mut used = ModuleDemand { dsp: 0, bram: 0, uram: 0 };
    let mut spanning = 0usize;
    for i in 0..p {
        if spans_one {
            // a spanning module consumes its SLR entirely and bleeds over
            spanning += 1;
            assignments.push(slr);
            slr += demand.dsp.div_ceil(cap.dsp.max(1));
            if slr > dev.slr_count {
                return Err(PlacementError::DoesNotFit { placed: i, requested: p });
            }
            continue;
        }
        loop {
            let fits = used.dsp + demand.dsp <= cap.dsp
                && used.bram + demand.bram <= cap.bram
                && used.uram + demand.uram <= cap.uram;
            if fits {
                used.dsp += demand.dsp;
                used.bram += demand.bram;
                used.uram += demand.uram;
                assignments.push(slr);
                break;
            }
            slr += 1;
            used = ModuleDemand { dsp: 0, bram: 0, uram: 0 };
            if slr >= dev.slr_count {
                return Err(PlacementError::DoesNotFit { placed: i, requested: p });
            }
        }
    }
    let crossings = assignments.windows(2).filter(|w| w[0] != w[1]).count();
    Ok(SlrPlacement { assignments, crossings, spanning_modules: spanning })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> FpgaDevice {
        FpgaDevice::u280()
    }

    #[test]
    fn rtm_paper_placement_one_module_per_slr() {
        // V=1 RTM: 1974 DSP + 288 URAM per module, p=3 → one per SLR
        let d = dev();
        let pl = place_chain(&d, 3, ModuleDemand { dsp: 1974, bram: 0, uram: 288 }).unwrap();
        assert_eq!(pl.assignments, vec![0, 1, 2]);
        assert_eq!(pl.crossings, 2);
        assert_eq!(pl.spanning_modules, 0);
        assert_eq!(pl.occupancy(3), vec![1, 1, 1]);
    }

    #[test]
    fn rtm_v2_module_spans_slrs() {
        // V=2 doubles the module: 3948 DSP > 2830 per SLR → spanning — the
        // exact configuration the paper avoids by setting V=1
        let d = dev();
        let pl = place_chain(&d, 1, ModuleDemand { dsp: 3948, bram: 0, uram: 576 }).unwrap();
        assert_eq!(pl.spanning_modules, 1);
    }

    #[test]
    fn poisson_p60_spreads_over_three_slrs() {
        // 112 DSP + 16 BRAM per module: 25 modules per SLR by DSP
        let d = dev();
        let pl = place_chain(&d, 60, ModuleDemand { dsp: 112, bram: 16, uram: 0 }).unwrap();
        assert_eq!(pl.crossings, 2);
        let occ = pl.occupancy(3);
        assert_eq!(occ.iter().sum::<usize>(), 60);
        assert!(occ[0] >= 20 && occ[0] <= 25, "occupancy {occ:?}");
        assert_eq!(pl.spanning_modules, 0);
    }

    #[test]
    fn overflow_reports_does_not_fit() {
        let d = dev();
        let err = place_chain(&d, 100, ModuleDemand { dsp: 112, bram: 0, uram: 0 }).unwrap_err();
        match err {
            PlacementError::DoesNotFit { placed, requested } => {
                assert_eq!(requested, 100);
                assert!(placed >= 75, "placed {placed}");
            }
        }
        assert!(format!("{err}").contains("does not fit"));
    }

    #[test]
    fn small_chain_stays_in_one_slr() {
        let d = dev();
        let pl = place_chain(&d, 4, ModuleDemand { dsp: 112, bram: 16, uram: 0 }).unwrap();
        assert_eq!(pl.crossings, 0);
        assert_eq!(pl.assignments, vec![0, 0, 0, 0]);
    }

    #[test]
    fn uram_can_be_the_binding_resource() {
        // 29 Jacobi modules of 32 URAM each: 320/SLR → 10 per SLR
        let d = dev();
        let pl = place_chain(&d, 29, ModuleDemand { dsp: 264, bram: 0, uram: 32 }).unwrap();
        assert_eq!(pl.crossings, 2);
        let occ = pl.occupancy(3);
        assert_eq!(occ[0], 10);
    }
}
