//! 3D executors: baseline, batched and tiled execution (see [`crate::exec2d`]
//! for the 2D twins). Multi-stage chains make these the RTM execution path:
//! one pass chains `p × stages` processors — the paper's "four fused loops
//! … brought into a single pipeline", unrolled `p` times.

use crate::cycles;
use crate::design::{ExecMode, StencilDesign, Workload};
use crate::device::FpgaDevice;
use crate::error::ExecError;
use crate::power;
use crate::profile;
use crate::report::SimReport;
use crate::window::{run_chain_3d_engine_traced, Engine3D, ScalarEngine};
use sf_kernels::StencilOp3D;
use sf_mesh::{Batch3D, Element, Mesh3D, TileGrid1D};
use sf_telemetry::Recorder;

/// Timing/power estimate without executing the numerics.
///
/// # Errors
/// [`ExecError::ShapeMismatch`] if the workload is not 3D.
pub fn estimate_3d(
    dev: &FpgaDevice,
    design: &StencilDesign,
    wl: &Workload,
    niter: u64,
) -> Result<SimReport, ExecError> {
    if !matches!(wl, Workload::D3 { .. }) {
        return Err(ExecError::ShapeMismatch {
            detail: "3D estimator needs a 3D workload".to_string(),
        });
    }
    let plan = cycles::plan(dev, design, wl, niter);
    Ok(SimReport::from_plan(design, &plan, niter, power::fpga_power_w(dev, design)))
}

/// Execute `niter` iterations (each = all `stages_per_iter` in order) on a
/// (batch of) 3D mesh(es). Returns the result and the report.
pub fn simulate_3d<T: Element, K: StencilOp3D<T> + Clone>(
    dev: &FpgaDevice,
    design: &StencilDesign,
    stages_per_iter: &[K],
    input: &Batch3D<T>,
    niter: usize,
) -> (Batch3D<T>, SimReport) {
    simulate_3d_traced(dev, design, stages_per_iter, input, niter, &mut Recorder::disabled())
}

/// [`simulate_3d`] with telemetry (see [`crate::exec2d::simulate_2d_traced`]):
/// schedule trace plus window-buffer events for the first pass / first tile.
pub fn simulate_3d_traced<T: Element, K: StencilOp3D<T> + Clone>(
    dev: &FpgaDevice,
    design: &StencilDesign,
    stages_per_iter: &[K],
    input: &Batch3D<T>,
    niter: usize,
    rec: &mut Recorder,
) -> (Batch3D<T>, SimReport) {
    simulate_3d_core(&ScalarEngine, dev, design, stages_per_iter, input, niter, rec)
}

/// [`simulate_3d_traced`] for any [`Engine3D`]: the pass loop, mode
/// dispatch and plan accounting shared by the scalar and fast paths.
pub(crate) fn simulate_3d_core<T: Element, K: Clone, E: Engine3D<T, K>>(
    engine: &E,
    dev: &FpgaDevice,
    design: &StencilDesign,
    stages_per_iter: &[K],
    input: &Batch3D<T>,
    niter: usize,
    rec: &mut Recorder,
) -> (Batch3D<T>, SimReport) {
    assert!(niter > 0, "niter must be positive");
    assert_eq!(
        stages_per_iter.len(),
        design.spec.stages,
        "stage count must match the design's spec"
    );
    let (nx, ny, nz, b) = (input.nx(), input.ny(), input.nz(), input.batch());
    assert!(!matches!(design.mode, ExecMode::Tiled1D { .. }), "Tiled1D is a 2D mode");
    match design.mode {
        ExecMode::Baseline => assert_eq!(b, 1, "baseline design runs one mesh"),
        ExecMode::Batched { b: db } => assert_eq!(b, db, "batch size mismatch"),
        _ => assert_eq!(b, 1, "tiled design runs one mesh"),
    }
    let wl = Workload::D3 { nx, ny, nz, batch: b };
    let plane = nx * ny;
    let plan = profile::trace_schedule(dev, design, &wl, niter as u64, rec);
    // The streamed unit is a plane: ny rows at the design's row rate.
    let plane_cycles = cycles::design_row_cycles(dev, design, nx, nx) * ny as u64;

    let mut cur = input.clone();
    let mut remaining = niter;
    let mut first_pass = true;
    let mut off = Recorder::disabled();
    while remaining > 0 {
        let p_eff = design.p.min(remaining);
        let chain: Vec<K> = (0..p_eff).flat_map(|_| stages_per_iter.iter().cloned()).collect();
        let pass_rec: &mut Recorder = if first_pass { &mut *rec } else { &mut off };
        cur = match design.mode {
            ExecMode::Tiled2D { tile_m, tile_n } => {
                let mesh = cur.mesh(0);
                let out =
                    tiled_pass_3d(engine, dev, design, &chain, &mesh, tile_m, tile_n, pass_rec);
                Batch3D::from_meshes(&[out])
            }
            _ => {
                let planes = cur.as_slice().chunks(plane).map(|p| p.to_vec());
                let out_planes = run_chain_3d_engine_traced(
                    engine,
                    &chain,
                    nx,
                    ny,
                    b * nz,
                    nz,
                    planes,
                    pass_rec,
                    "window/",
                    0,
                    plane_cycles,
                );
                let mut out = Batch3D::<T>::zeros(nx, ny, nz, b);
                for (gz, pl) in out_planes.into_iter().enumerate() {
                    out.as_mut_slice()[gz * plane..(gz + 1) * plane].copy_from_slice(&pl);
                }
                out
            }
        };
        remaining -= p_eff;
        first_pass = false;
    }

    let report =
        SimReport::from_plan(design, &plan, niter as u64, power::fpga_power_w(dev, design));
    (cur, report)
}

/// Convenience wrapper for single-mesh simulation.
pub fn simulate_mesh_3d<T: Element, K: StencilOp3D<T> + Clone>(
    dev: &FpgaDevice,
    design: &StencilDesign,
    stages_per_iter: &[K],
    input: &Mesh3D<T>,
    niter: usize,
) -> (Mesh3D<T>, SimReport) {
    let batch = Batch3D::from_meshes(std::slice::from_ref(input));
    let (out, rep) = simulate_3d(dev, design, stages_per_iter, &batch, niter);
    (out.mesh(0), rep)
}

/// One spatially-blocked pass over a 3D mesh: `M × N` tiles spanning the
/// full `z` extent, streamed plane by plane.
#[allow(clippy::too_many_arguments)]
fn tiled_pass_3d<T: Element, K: Clone, E: Engine3D<T, K>>(
    engine: &E,
    dev: &FpgaDevice,
    design: &StencilDesign,
    chain: &[K],
    mesh: &Mesh3D<T>,
    tile_m: usize,
    tile_n: usize,
    rec: &mut Recorder,
) -> Mesh3D<T> {
    let (nx, ny, nz) = (mesh.nx(), mesh.ny(), mesh.nz());
    let halo = design.p * design.spec.halo_order() / 2;
    let align = (64 / design.spec.elem_bytes).max(1);
    let gx = TileGrid1D::new(nx, tile_m, halo, align);
    let gy = TileGrid1D::new(ny, tile_n, halo, 1);
    let mut out = Mesh3D::<T>::zeros(nx, ny, nz);
    let mut off = Recorder::disabled();
    let mut first_tile = true;
    for ty in gy.tiles() {
        for tx in gx.tiles() {
            let planes = (0..nz).map(|z| {
                let mut buf = Vec::with_capacity(tx.read_len * ty.read_len);
                for y in ty.read_start..ty.read_end() {
                    let s = (z * ny + y) * nx + tx.read_start;
                    buf.extend_from_slice(&mesh.as_slice()[s..s + tx.read_len]);
                }
                buf
            });
            let tile_rec: &mut Recorder = if first_tile { &mut *rec } else { &mut off };
            first_tile = false;
            let plane_cycles = cycles::design_row_cycles(dev, design, tx.read_len, tx.valid_len)
                * ty.read_len as u64;
            let tile_planes = run_chain_3d_engine_traced(
                engine,
                chain,
                tx.read_len,
                ty.read_len,
                nz,
                nz,
                planes,
                tile_rec,
                "tile0/",
                0,
                plane_cycles,
            );
            let (offx, offy) = (tx.valid_offset(), ty.valid_offset());
            for (z, pl) in tile_planes.into_iter().enumerate() {
                for vy in 0..ty.valid_len {
                    let src = (offy + vy) * tx.read_len + offx;
                    let dst = (z * ny + ty.valid_start + vy) * nx + tx.valid_start;
                    out.as_mut_slice()[dst..dst + tx.valid_len]
                        .copy_from_slice(&pl[src..src + tx.valid_len]);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::{synthesize, MemKind};
    use sf_kernels::{reference, rtm, Jacobi3D, RtmParams, RtmStage, StencilSpec};
    use sf_mesh::norms;

    fn dev() -> FpgaDevice {
        FpgaDevice::u280()
    }

    #[test]
    fn jacobi_baseline_bit_exact() {
        let m = Mesh3D::<f32>::random(16, 12, 10, 3, -1.0, 1.0);
        let wl = Workload::D3 { nx: 16, ny: 12, nz: 10, batch: 1 };
        let ds =
            synthesize(&dev(), &StencilSpec::jacobi(), 8, 4, ExecMode::Baseline, MemKind::Hbm, &wl)
                .unwrap();
        let k = Jacobi3D::smoothing();
        let (out, rep) = simulate_mesh_3d(&dev(), &ds, &[k], &m, 9);
        let expect = reference::run_3d(&k, &m, 9);
        assert!(norms::bit_equal(out.as_slice(), expect.as_slice()));
        assert_eq!(rep.passes, 3);
    }

    #[test]
    fn jacobi_batched_bit_exact() {
        let batch = Batch3D::<f32>::random(10, 10, 8, 4, 21, -1.0, 1.0);
        let wl = Workload::D3 { nx: 10, ny: 10, nz: 8, batch: 4 };
        let ds = synthesize(
            &dev(),
            &StencilSpec::jacobi(),
            8,
            3,
            ExecMode::Batched { b: 4 },
            MemKind::Hbm,
            &wl,
        )
        .unwrap();
        let k = Jacobi3D::smoothing();
        let (out, _) = simulate_3d(&dev(), &ds, &[k], &batch, 6);
        let expect = reference::run_batch_3d(&k, &batch, 6);
        assert!(norms::bit_equal(out.as_slice(), expect.as_slice()));
    }

    #[test]
    fn jacobi_tiled_bit_exact() {
        let m = Mesh3D::<f32>::random(60, 44, 10, 5, -1.0, 1.0);
        let wl = Workload::D3 { nx: 60, ny: 44, nz: 10, batch: 1 };
        let ds = synthesize(
            &dev(),
            &StencilSpec::jacobi(),
            8,
            4,
            ExecMode::Tiled2D { tile_m: 32, tile_n: 24 },
            MemKind::Hbm,
            &wl,
        )
        .unwrap();
        let k = Jacobi3D::smoothing();
        let (out, _) = simulate_mesh_3d(&dev(), &ds, &[k], &m, 8);
        let expect = reference::run_3d(&k, &m, 8);
        assert!(
            norms::bit_equal(out.as_slice(), expect.as_slice()),
            "first mismatch: {:?}",
            norms::first_mismatch(out.as_slice(), expect.as_slice())
        );
    }

    #[test]
    fn rtm_fused_pipeline_bit_exact() {
        // The headline integration: 4 fused RK4 stages × p unroll, streamed
        // through plane window buffers, must equal the golden RTM reference.
        let (y, rho, mu) = rtm::demo_workload(14, 13, 12);
        let prm = RtmParams::default();
        let packed = rtm::pack(&y, &rho, &mu);
        let wl = Workload::D3 { nx: 14, ny: 13, nz: 12, batch: 1 };
        let ds =
            synthesize(&dev(), &StencilSpec::rtm(), 1, 3, ExecMode::Baseline, MemKind::Hbm, &wl)
                .unwrap();
        let stages = RtmStage::pipeline(prm);
        let (out_packed, rep) = simulate_mesh_3d(&dev(), &ds, &stages, &packed, 6);
        let out = rtm::unpack(&out_packed);
        let expect = reference::rtm_run(&y, &rho, &mu, prm, 6);
        assert!(
            norms::bit_equal(out.as_slice(), expect.as_slice()),
            "first mismatch: {:?}",
            norms::first_mismatch(out.as_slice(), expect.as_slice())
        );
        assert_eq!(rep.passes, 2);
        assert!(rep.bandwidth_gbs > 0.0);
    }

    #[test]
    fn rtm_batched_bit_exact() {
        let prm = RtmParams::default();
        let mut meshes = Vec::new();
        for i in 0..3 {
            let (y, rho, mu) = rtm::demo_workload(12 + i, 12, 12);
            // same shape required: regenerate at fixed shape with varied seed content
            let _ = (y, rho, mu);
            meshes.push({
                let (y, rho, mu) = rtm::demo_workload(12, 12, 12);
                let mut p = rtm::pack(&y, &rho, &mu);
                // perturb deterministically per mesh so batch members differ
                let v = p.get(6, 6, 6);
                let mut v2 = v;
                v2.0[0] += 0.01 * (i as f32 + 1.0);
                v2.0[6] = v2.0[0];
                v2.0[12] = v2.0[0];
                p.set(6, 6, 6, v2);
                p
            });
        }
        let batch = Batch3D::from_meshes(&meshes);
        let wl = Workload::D3 { nx: 12, ny: 12, nz: 12, batch: 3 };
        let ds = synthesize(
            &dev(),
            &StencilSpec::rtm(),
            1,
            3,
            ExecMode::Batched { b: 3 },
            MemKind::Hbm,
            &wl,
        )
        .unwrap();
        let stages = RtmStage::pipeline(prm);
        let (out, _) = simulate_3d(&dev(), &ds, &stages, &batch, 3);
        let expect = {
            let per: Vec<_> =
                meshes.iter().map(|m| reference::run_stages_3d(&stages, m, 3)).collect();
            Batch3D::from_meshes(&per)
        };
        assert!(norms::bit_equal(out.as_slice(), expect.as_slice()));
    }

    #[test]
    fn traced_3d_simulation_matches_untraced() {
        let m = Mesh3D::<f32>::random(16, 12, 10, 3, -1.0, 1.0);
        let wl = Workload::D3 { nx: 16, ny: 12, nz: 10, batch: 1 };
        let ds =
            synthesize(&dev(), &StencilSpec::jacobi(), 8, 4, ExecMode::Baseline, MemKind::Hbm, &wl)
                .unwrap();
        let k = Jacobi3D::smoothing();
        let (plain, rep) = simulate_mesh_3d(&dev(), &ds, &[k], &m, 9);
        let mut rec = crate::Recorder::enabled(ds.freq_hz / 1e6);
        let batch = Batch3D::from_meshes(std::slice::from_ref(&m));
        let (traced, rep2) = simulate_3d_traced(&dev(), &ds, &[k], &batch, 9, &mut rec);
        assert!(norms::bit_equal(traced.mesh(0).as_slice(), plain.as_slice()));
        assert_eq!(rep.total_cycles, rep2.total_cycles);
        let pipe = rec.find_track("pipeline").unwrap();
        assert_eq!(rec.track_span_cycles(pipe), rep.total_cycles);
        assert_eq!(rec.counter("window.planes_streamed"), 10);
    }

    #[test]
    fn estimate_matches_simulate_timing_3d() {
        let m = Mesh3D::<f32>::random(12, 12, 12, 2, 0.0, 1.0);
        let wl = Workload::D3 { nx: 12, ny: 12, nz: 12, batch: 1 };
        let ds =
            synthesize(&dev(), &StencilSpec::jacobi(), 8, 2, ExecMode::Baseline, MemKind::Hbm, &wl)
                .unwrap();
        let k = Jacobi3D::smoothing();
        let (_, sim) = simulate_mesh_3d(&dev(), &ds, &[k], &m, 4);
        let est = estimate_3d(&dev(), &ds, &wl, 4).unwrap();
        assert_eq!(sim.total_cycles, est.total_cycles);
        assert_eq!(sim.runtime_s, est.runtime_s);
    }

    #[test]
    fn estimate_rejects_2d_workload_with_typed_error() {
        let wl = Workload::D3 { nx: 12, ny: 12, nz: 12, batch: 1 };
        let ds =
            synthesize(&dev(), &StencilSpec::jacobi(), 8, 2, ExecMode::Baseline, MemKind::Hbm, &wl)
                .unwrap();
        let bad = Workload::D2 { nx: 12, ny: 12, batch: 1 };
        let err = estimate_3d(&dev(), &ds, &bad, 4).unwrap_err();
        assert!(matches!(err, ExecError::ShapeMismatch { .. }), "{err:?}");
        assert!(format!("{err}").contains("3D estimator needs a 3D workload"));
    }
}

#[cfg(test)]
mod rtm_tiling_future_work {
    //! The paper's §V-C future-work item: spatially-blocked RTM.
    //!
    //! "A solution for the limited mesh size is of course spatial blocking,
    //! but it requires p=4. This leads to a tile size dimension M=96 from
    //! (12) given D is 8, which requires a large amount of FPGA internal
    //! memory, making an implementation on the U280 challenging … We leave
    //! this to future work."
    //!
    //! Implementing the future work here surfaces a subtlety the paper's
    //! estimate misses: one *fused* RK4 iteration propagates dependencies
    //! through all four chained stages, i.e. `stages · D/2 = 16` cells per
    //! side — so the tiling halo is `p · 32`, not the `p · 8` that eq. (12)
    //! with `D = 8` implies. At p = 4 the halo alone is 128 > M = 96: the
    //! paper's proposed configuration is structurally impossible, not merely
    //! memory-hungry. What *does* work: p = 1 tiling, which even fits the
    //! real U280; p = 2 needs roughly a 2× device.

    use super::*;
    use crate::design::{synthesize, MemKind, SynthesisError};
    use sf_kernels::{reference, rtm, RtmParams, RtmStage, StencilSpec};
    use sf_mesh::norms;

    #[test]
    fn paper_p4_m96_is_structurally_impossible_for_the_fused_pipeline() {
        let d = FpgaDevice::u280();
        let wl = Workload::D3 { nx: 256, ny: 256, nz: 64, batch: 1 };
        let err = synthesize(
            &d,
            &StencilSpec::rtm(),
            1,
            4,
            ExecMode::Tiled2D { tile_m: 96, tile_n: 96 },
            MemKind::Hbm,
            &wl,
        )
        .unwrap_err();
        // rejected for halo geometry (96 ≤ 4·32), before memory even matters
        assert!(matches!(err, SynthesisError::Invalid(_)), "{err}");
    }

    #[test]
    fn p1_m96_tiling_fits_the_real_u280() {
        // halo p·stages·D/2 = 16 < 96; window memory: 20 URAM per plane-lane
        // × 8 planes × 4 stages = 640 of 960 URAM
        let d = FpgaDevice::u280();
        let wl = Workload::D3 { nx: 256, ny: 256, nz: 64, batch: 1 };
        let ds = synthesize(
            &d,
            &StencilSpec::rtm(),
            1,
            1,
            ExecMode::Tiled2D { tile_m: 96, tile_n: 96 },
            MemKind::Hbm,
            &wl,
        )
        .expect("p=1 RTM tiling must fit the U280");
        assert!(ds.resources.uram_blocks <= 960);
        assert!(ds.resources.fits(&d));
    }

    #[test]
    fn p2_m96_tiling_needs_a_2x_device() {
        let wl = Workload::D3 { nx: 256, ny: 256, nz: 64, batch: 1 };
        let mode = ExecMode::Tiled2D { tile_m: 96, tile_n: 96 };
        let spec = StencilSpec::rtm();
        let err =
            synthesize(&FpgaDevice::u280(), &spec, 1, 2, mode, MemKind::Hbm, &wl).unwrap_err();
        assert!(matches!(err, SynthesisError::InsufficientMemory { .. }), "{err}");
        let ds = synthesize(&FpgaDevice::hypothetical_2x(), &spec, 1, 2, mode, MemKind::Hbm, &wl)
            .expect("2x device must fit p=2 tiling");
        assert_eq!(ds.p, 2);
    }

    #[test]
    fn tiled_fused_rtm_is_bit_exact() {
        // reduced geometry, same structure: p=1, halo stages·D/2 = 16,
        // overlapped 40×36 tiles on a 56×40×12 mesh
        let d = FpgaDevice::u280();
        let (y, rho, mu) = rtm::demo_workload(56, 40, 12);
        let prm = RtmParams::default();
        let packed = rtm::pack(&y, &rho, &mu);
        let wl = Workload::D3 { nx: 56, ny: 40, nz: 12, batch: 1 };
        let ds = synthesize(
            &d,
            &StencilSpec::rtm(),
            1,
            1,
            ExecMode::Tiled2D { tile_m: 40, tile_n: 36 },
            MemKind::Hbm,
            &wl,
        )
        .unwrap();
        let stages = RtmStage::pipeline(prm);
        let (out_packed, rep) = simulate_mesh_3d(&d, &ds, &stages, &packed, 4);
        let out = rtm::unpack(&out_packed);
        let expect = reference::rtm_run(&y, &rho, &mu, prm, 4);
        assert!(
            norms::bit_equal(out.as_slice(), expect.as_slice()),
            "first mismatch: {:?}",
            norms::first_mismatch(out.as_slice(), expect.as_slice())
        );
        assert!(rep.ext_read_bytes > rep.ext_write_bytes, "halo redundancy");
    }
}
