//! Minimal text-table rendering for experiment output.

use serde::{Deserialize, Serialize};

/// One regenerated table or figure: a title, column headers, string rows,
/// and free-form notes (conventions, deviations).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Experiment {
    /// Identifier matching the paper ("Table IV", "Fig. 3a", …).
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (stringified).
    pub rows: Vec<Vec<String>>,
    /// Caveats / conventions.
    pub notes: Vec<String>,
}

impl Experiment {
    /// Build with string conversion sugar.
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        Experiment {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Append a note line.
    pub fn note(&mut self, s: &str) {
        self.notes.push(s.to_string());
    }

    /// Render as a GitHub-flavoured markdown table (for EXPERIMENTS.md).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {} — {}\n\n", self.id, self.title));
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.headers.len())));
        for r in &self.rows {
            out.push_str(&format!("| {} |\n", r.join(" | ")));
        }
        for n in &self.notes {
            out.push_str(&format!("\n> {n}\n"));
        }
        out
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("═══ {} — {} ═══\n", self.id, self.title));
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"─".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("  note: {n}\n"));
        }
        out
    }
}

/// Format helpers shared by the experiment functions.
pub mod fmt {
    /// `x` with 0 decimals, or "-" for None.
    pub fn f0(x: Option<f64>) -> String {
        x.map(|v| format!("{v:.0}")).unwrap_or_else(|| "-".into())
    }

    /// `x` with 3 decimals, or "-".
    pub fn f3(x: Option<f64>) -> String {
        x.map(|v| format!("{v:.3}")).unwrap_or_else(|| "-".into())
    }

    /// ratio "ours/paper" as a percentage string, or "-".
    pub fn ratio(ours: f64, paper: Option<f64>) -> String {
        match paper {
            Some(p) if p > 0.0 => format!("{:+.0}%", (ours - p) / p * 100.0),
            _ => "-".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut e = Experiment::new("Table X", "demo", &["mesh", "GB/s"]);
        e.row(vec!["200x100".into(), "384".into()]);
        e.row(vec!["4".into(), "1".into()]);
        e.note("convention");
        let s = e.render();
        assert!(s.contains("Table X"));
        assert!(s.contains("note: convention"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[1].len(), lines[3].len(), "rows align");
    }

    #[test]
    fn markdown_rendering() {
        let mut e = Experiment::new("Table X", "demo", &["mesh", "GB/s"]);
        e.row(vec!["200x100".into(), "384".into()]);
        e.note("caveat");
        let md = e.to_markdown();
        assert!(md.contains("### Table X — demo"));
        assert!(md.contains("| mesh | GB/s |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 200x100 | 384 |"));
        assert!(md.contains("> caveat"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut e = Experiment::new("T", "t", &["a", "b"]);
        e.row(vec!["x".into()]);
    }

    #[test]
    fn fmt_helpers() {
        assert_eq!(fmt::f0(Some(12.6)), "13");
        assert_eq!(fmt::f0(None), "-");
        assert_eq!(fmt::f3(Some(0.7654)), "0.765");
        assert_eq!(fmt::ratio(110.0, Some(100.0)), "+10%");
        assert_eq!(fmt::ratio(1.0, None), "-");
    }
}
