//! Stream FIFOs.
//!
//! §III: "A perfect data reuse path can be created by (1) using a
//! First-In-First-Out (FIFO) buffer to fetch data from DDR4/HBM memory
//! without interruption (allowing burst transfers)…". HLS dataflow designs
//! also place FIFOs between chained kernels. This module provides:
//!
//! * [`Fifo`] — a bounded queue with backpressure semantics and occupancy
//!   statistics (high-water mark, stall count), the behavioral element;
//! * [`interstage_depth`] / [`fifo_brams`] — the sizing rules the design
//!   synthesizer uses to charge FIFO BRAM.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Error returned when pushing into a full FIFO (backpressure).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Full;

/// A bounded FIFO with occupancy statistics.
#[derive(Clone, Debug)]
pub struct Fifo<T> {
    buf: VecDeque<T>,
    capacity: usize,
    high_water: usize,
    stalls: u64,
    total_pushes: u64,
}

impl<T> Fifo<T> {
    /// Create a FIFO of the given capacity (> 0).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "FIFO capacity must be positive");
        Fifo {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            high_water: 0,
            stalls: 0,
            total_pushes: 0,
        }
    }

    /// Push one element; `Err(Full)` applies backpressure (and is counted).
    pub fn try_push(&mut self, v: T) -> Result<(), Full> {
        if self.buf.len() == self.capacity {
            self.stalls += 1;
            return Err(Full);
        }
        self.buf.push_back(v);
        self.total_pushes += 1;
        self.high_water = self.high_water.max(self.buf.len());
        Ok(())
    }

    /// Pop the oldest element.
    pub fn pop(&mut self) -> Option<T> {
        self.buf.pop_front()
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// `true` when at capacity.
    pub fn is_full(&self) -> bool {
        self.buf.len() == self.capacity
    }

    /// Deepest occupancy observed — what the hardware FIFO must hold.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Rejected pushes (producer stalls).
    pub fn stalls(&self) -> u64 {
        self.stalls
    }

    /// Accepted pushes.
    pub fn total_pushes(&self) -> u64 {
        self.total_pushes
    }
}

/// Depth of the FIFO between two chained pipeline stages: two vector words
/// of slack per AXI burst so a burst refill never stalls the consumer —
/// `max(16, 2 · burst_bytes / (V · elem_bytes))` elements.
pub fn interstage_depth(burst_bytes: usize, v: usize, elem_bytes: usize) -> usize {
    (2 * burst_bytes / (v * elem_bytes).max(1)).max(16)
}

/// Statistics snapshot for reporting.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FifoStats {
    /// Configured capacity.
    pub capacity: usize,
    /// High-water mark.
    pub high_water: usize,
    /// Producer stalls.
    pub stalls: u64,
}

impl<T> Fifo<T> {
    /// Snapshot the statistics.
    pub fn stats(&self) -> FifoStats {
        FifoStats {
            capacity: self.capacity,
            high_water: self.high_water,
            stalls: self.stalls,
        }
    }
}

/// BRAM18/36 blocks for a design's stream FIFOs: one FIFO per chained stage
/// boundary plus one read- and one write-side memory FIFO, each sized by
/// [`interstage_depth`] and quantized to BRAM36.
pub fn fifo_brams(
    bram_block_bytes: usize,
    burst_bytes: usize,
    v: usize,
    elem_bytes: usize,
    chained_stages: usize,
) -> usize {
    let depth = interstage_depth(burst_bytes, v, elem_bytes);
    let bytes = depth * v * elem_bytes;
    let blocks_per_fifo = bytes.div_ceil(bram_block_bytes).max(1);
    let n_fifos = chained_stages.saturating_sub(1) + 2;
    blocks_per_fifo * n_fifos
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_order() {
        let mut f = Fifo::new(4);
        for i in 0..4 {
            f.try_push(i).unwrap();
        }
        assert!(f.is_full());
        assert_eq!(f.try_push(9), Err(Full));
        assert_eq!(f.stalls(), 1);
        assert_eq!(f.pop(), Some(0));
        assert_eq!(f.pop(), Some(1));
        f.try_push(4).unwrap();
        assert_eq!(f.pop(), Some(2));
        assert_eq!(f.pop(), Some(3));
        assert_eq!(f.pop(), Some(4));
        assert_eq!(f.pop(), None);
        assert!(f.is_empty());
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut f = Fifo::new(8);
        for i in 0..5 {
            f.try_push(i).unwrap();
        }
        for _ in 0..5 {
            f.pop();
        }
        for i in 0..3 {
            f.try_push(i).unwrap();
        }
        assert_eq!(f.high_water(), 5);
        assert_eq!(f.total_pushes(), 8);
        let s = f.stats();
        assert_eq!(s.capacity, 8);
        assert_eq!(s.high_water, 5);
        assert_eq!(s.stalls, 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = Fifo::<u8>::new(0);
    }

    #[test]
    fn interstage_depth_sizing() {
        // Poisson V=8: 2·4096/(8·4) = 256 elements
        assert_eq!(interstage_depth(4096, 8, 4), 256);
        // RTM V=1 packed 80 B: 2·4096/80 = 102
        assert_eq!(interstage_depth(4096, 1, 80), 102);
        // floor at 16
        assert_eq!(interstage_depth(64, 64, 4), 16);
    }

    #[test]
    fn fifo_bram_accounting() {
        // Poisson p=60: 61 FIFOs of 256×32 B = 8 KiB → 2 BRAM36 each
        let b = fifo_brams(4608, 4096, 8, 4, 60);
        assert_eq!(b, 61 * 2);
        // single-stage chain still needs the two memory-side FIFOs
        let b1 = fifo_brams(4608, 4096, 8, 4, 1);
        assert_eq!(b1, 2 * 2);
    }
}
