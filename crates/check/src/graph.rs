//! The dataflow graph the rules run over.
//!
//! An accelerator design is a linear HLS dataflow chain: a memory-read
//! stage, `p × stages` chained compute stages (one per fused stage of each
//! unrolled iteration module), and a memory-write stage, with a stream FIFO
//! on every edge. [`DataflowGraph::build`] reconstructs that chain from the
//! design parameters so diagnostics can point at a concrete node or edge
//! (`module[3].stage[1]`, `mem.read→module[0].stage[0]`) instead of "the
//! design".

use sf_kernels::StencilSpec;

/// What a node in the chain is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NodeKind {
    /// AXI read side: bursts from DDR4/HBM into the first stream.
    MemRead,
    /// One fused stage of one unrolled iteration module.
    Stage {
        /// Unrolled-iteration index (`0..p`).
        module: usize,
        /// Fused-stage index within the module (`0..stages`).
        stage: usize,
    },
    /// AXI write side: bursts the last stream back out.
    MemWrite,
}

/// One node of the dataflow graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Node {
    /// Index into [`DataflowGraph::nodes`].
    pub id: usize,
    /// Stable label used in diagnostic locations.
    pub label: String,
    /// Role of the node.
    pub kind: NodeKind,
}

/// A stream FIFO between two chained nodes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Edge {
    /// Producer node id.
    pub from: usize,
    /// Consumer node id.
    pub to: usize,
    /// FIFO depth in vector elements (after any override).
    pub depth: usize,
}

/// The reconstructed dataflow chain of a design.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DataflowGraph {
    /// `mem.read`, the `p·stages` compute stages in chain order, `mem.write`.
    pub nodes: Vec<Node>,
    /// One FIFO per chain link: `p·stages + 1` edges.
    pub edges: Vec<Edge>,
}

impl DataflowGraph {
    /// Build the chain for an unroll factor `p` with every FIFO at `depth`
    /// elements. Degenerate parameters (`p == 0`) produce the two memory
    /// endpoints joined by a single stream.
    pub fn build(spec: &StencilSpec, p: usize, depth: usize) -> Self {
        let mut nodes = Vec::with_capacity(p * spec.stages + 2);
        nodes.push(Node { id: 0, label: "mem.read".into(), kind: NodeKind::MemRead });
        for module in 0..p {
            for stage in 0..spec.stages {
                let id = nodes.len();
                nodes.push(Node {
                    id,
                    label: format!("module[{module}].stage[{stage}]"),
                    kind: NodeKind::Stage { module, stage },
                });
            }
        }
        let id = nodes.len();
        nodes.push(Node { id, label: "mem.write".into(), kind: NodeKind::MemWrite });

        let edges = (0..nodes.len() - 1).map(|i| Edge { from: i, to: i + 1, depth }).collect();
        DataflowGraph { nodes, edges }
    }

    /// `producer→consumer` label for an edge, for diagnostic locations.
    pub fn edge_label(&self, edge: &Edge) -> String {
        format!("{}→{}", self.nodes[edge.from].label, self.nodes[edge.to].label)
    }

    /// Label of the first compute stage (or `mem.write` for `p == 0`).
    pub fn first_stage_label(&self) -> &str {
        &self.nodes[1.min(self.nodes.len() - 1)].label
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_shape_matches_unroll() {
        let g = DataflowGraph::build(&StencilSpec::poisson(), 4, 256);
        assert_eq!(g.nodes.len(), 4 + 2);
        assert_eq!(g.edges.len(), 4 + 1);
        assert_eq!(g.nodes[0].kind, NodeKind::MemRead);
        assert_eq!(g.nodes[5].kind, NodeKind::MemWrite);
        assert_eq!(g.nodes[1].label, "module[0].stage[0]");
        assert_eq!(g.edge_label(&g.edges[0]), "mem.read→module[0].stage[0]");
        assert!(g.edges.iter().all(|e| e.depth == 256));
    }

    #[test]
    fn fused_stages_expand_the_chain() {
        // RTM: 4 fused stages per module
        let g = DataflowGraph::build(&StencilSpec::rtm(), 3, 102);
        assert_eq!(g.nodes.len(), 3 * 4 + 2);
        assert_eq!(g.edges.len(), 3 * 4 + 1);
        assert_eq!(g.nodes[4].label, "module[0].stage[3]");
        assert_eq!(g.nodes[5].label, "module[1].stage[0]");
    }

    #[test]
    fn degenerate_p_zero_is_two_endpoints() {
        let g = DataflowGraph::build(&StencilSpec::poisson(), 0, 16);
        assert_eq!(g.nodes.len(), 2);
        assert_eq!(g.edges.len(), 1);
        assert_eq!(g.first_stage_label(), "mem.write");
    }
}
