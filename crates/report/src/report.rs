//! Cross-run report: group a run store by configuration, aggregate cycle
//! distributions with [`QuantileSketch`]es, and attach a roofline
//! position to every measured paper-app configuration.
//!
//! Reports are **byte-reproducible**: records carry host wall times, but
//! the report deliberately never reads them, group order is the sorted
//! config key, and every float that reaches the output is finite.

use crate::error::ReportError;
use crate::record::{RunKind, RunRecord};
use crate::roofline::{analyze, Roofline};
use serde::{Deserialize, Serialize};
use sf_fpga::FpgaDevice;
use sf_telemetry::{QuantileSketch, StallBreakdown};
use std::collections::BTreeMap;

/// Schema tag stamped into every report document (and checked when a
/// report is re-read as a comparison baseline).
pub const REPORT_SCHEMA: &str = "sf-report/v1";

/// Aggregated statistics for one configuration (one [`config_key`]).
///
/// [`config_key`]: RunRecord::config_key
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ConfigStats {
    /// The grouping key (kind/app/mesh/design).
    pub key: String,
    /// Invocation kind shared by every run in the group.
    pub kind: RunKind,
    /// App slug shared by every run in the group.
    pub app: String,
    /// Number of runs aggregated.
    pub runs: u64,
    /// Analytic-model cycles from the most recent run.
    pub predicted_cycles: u64,
    /// Median simulated cycles across runs (0 when unmeasured).
    pub measured_p50: u64,
    /// 90th-percentile simulated cycles.
    pub measured_p90: u64,
    /// 99th-percentile simulated cycles.
    pub measured_p99: u64,
    /// Fastest observed run.
    pub measured_min: u64,
    /// Slowest observed run.
    pub measured_max: u64,
    /// Median of the finite predicted-vs-measured divergences, percent.
    pub divergence_median_pct: Option<f64>,
    /// Fault counters summed across campaign runs; empty otherwise.
    pub fault_counters: BTreeMap<String, u64>,
    /// Design-rule errors summed across runs.
    pub check_errors: u64,
    /// Design-rule warnings summed across runs.
    pub check_warnings: u64,
    /// Roofline position (paper apps with measurements only), computed
    /// from the group's median cycles and summed stall attribution.
    pub roofline: Option<Roofline>,
}

/// The cross-run report document.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// Always [`REPORT_SCHEMA`]; checked when loaded as a baseline.
    pub schema: String,
    /// Git commit from the most recent record carrying one.
    pub git_sha: Option<String>,
    /// Total records aggregated.
    pub total_runs: u64,
    /// Per-configuration statistics, sorted by key.
    pub configs: Vec<ConfigStats>,
}

/// Median of a slice of finite floats; `None` when empty. Even-length
/// inputs average the two middle elements.
fn median(vals: &mut [f64]) -> Option<f64> {
    if vals.is_empty() {
        return None;
    }
    vals.sort_by(|a, b| a.partial_cmp(b).unwrap_or(core::cmp::Ordering::Equal));
    let n = vals.len();
    if n % 2 == 1 {
        Some(vals[n / 2])
    } else {
        Some((vals[n / 2 - 1] + vals[n / 2]) / 2.0)
    }
}

impl Report {
    /// Aggregate a run store into a report, grouping by config key.
    ///
    /// The roofline of each group is evaluated against the paper's
    /// reference device (Alveo U280) at the group's median cycle count.
    pub fn build(records: &[RunRecord]) -> Report {
        let dev = FpgaDevice::u280();
        let mut groups: BTreeMap<String, Vec<&RunRecord>> = BTreeMap::new();
        let mut git_sha = None;
        for rec in records {
            if rec.git_sha.is_some() {
                git_sha = rec.git_sha.clone();
            }
            groups.entry(rec.config_key()).or_default().push(rec);
        }

        let mut configs = Vec::with_capacity(groups.len());
        for (key, group) in groups {
            let mut sketch = QuantileSketch::new();
            let mut stalls = StallBreakdown::default();
            let mut divergences = Vec::new();
            let mut fault_counters: BTreeMap<String, u64> = BTreeMap::new();
            let mut check_errors = 0u64;
            let mut check_warnings = 0u64;
            for rec in &group {
                if rec.has_measurement() {
                    sketch.record(rec.measured_cycles);
                }
                stalls.compute_cycles += rec.stalls.compute_cycles;
                stalls.memory_cycles += rec.stalls.memory_cycles;
                stalls.backpressure_cycles += rec.stalls.backpressure_cycles;
                stalls.checkpoint_cycles += rec.stalls.checkpoint_cycles;
                stalls.exchange_cycles += rec.stalls.exchange_cycles;
                if let Some(d) = rec.divergence_pct.filter(|d| d.is_finite()) {
                    divergences.push(d);
                }
                for (name, n) in &rec.fault_counters {
                    *fault_counters.entry(name.clone()).or_insert(0) += n;
                }
                check_errors += rec.check_errors;
                check_warnings += rec.check_warnings;
            }
            // groups are non-empty by construction
            let Some(last) = group.last() else { continue };
            let p50 = sketch.p50();
            let roofline = analyze(&dev, last, p50, &stalls);
            configs.push(ConfigStats {
                key,
                kind: last.kind,
                app: last.app.clone(),
                runs: group.len() as u64,
                predicted_cycles: last.predicted_cycles,
                measured_p50: p50,
                measured_p90: sketch.p90(),
                measured_p99: sketch.p99(),
                measured_min: sketch.min(),
                measured_max: sketch.max(),
                divergence_median_pct: median(&mut divergences),
                fault_counters,
                check_errors,
                check_warnings,
                roofline,
            });
        }

        Report {
            schema: REPORT_SCHEMA.to_string(),
            git_sha,
            total_runs: records.len() as u64,
            configs,
        }
    }

    /// Find a configuration by key.
    pub fn config(&self, key: &str) -> Option<&ConfigStats> {
        self.configs.iter().find(|c| c.key == key)
    }

    /// Serialize the report as pretty JSON (the `--json` output and the
    /// baseline file format).
    pub fn to_json_string(&self) -> Result<String, ReportError> {
        serde_json::to_string_pretty(self).map_err(|e| ReportError::Encode { msg: e.to_string() })
    }

    /// Parse a report document (e.g. a committed baseline), rejecting
    /// foreign schemas.
    pub fn from_json_str(body: &str) -> Result<Report, ReportError> {
        let rep: Report =
            serde_json::from_str(body).map_err(|e| ReportError::Baseline { msg: e.to_string() })?;
        if rep.schema != REPORT_SCHEMA {
            return Err(ReportError::Baseline {
                msg: format!("schema `{}` (this build reads `{REPORT_SCHEMA}`)", rep.schema),
            });
        }
        Ok(rep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RunKind;

    fn measured(app: &str, cycles: u64) -> RunRecord {
        let mut r = RunRecord::empty(RunKind::Profile, app);
        r.dims = vec![200, 100];
        r.niter = 100;
        r.v = 8;
        r.p = 16;
        r.mode = "Baseline".into();
        r.mem = "hbm".into();
        r.freq_mhz = 300.0;
        r.predicted_cycles = cycles - cycles / 50;
        r.measured_cycles = cycles;
        r.stalls.memory_cycles = 64;
        r.divergence_pct = Some(2.0);
        r
    }

    #[test]
    fn groups_aggregate_and_sort_by_key() {
        let mut recs = vec![measured("poisson2d", 1_000_000), measured("poisson2d", 1_010_000)];
        let mut other = measured("poisson2d", 500_000);
        other.niter = 50;
        recs.push(other);
        let rep = Report::build(&recs);
        assert_eq!(rep.schema, REPORT_SCHEMA);
        assert_eq!(rep.total_runs, 3);
        assert_eq!(rep.configs.len(), 2);
        let keys: Vec<_> = rep.configs.iter().map(|c| c.key.clone()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        let big = rep.configs.iter().find(|c| c.runs == 2).expect("2-run group");
        assert!(big.measured_p50 >= 1_000_000 && big.measured_p50 <= 1_010_000 * 102 / 100);
        assert_eq!(big.divergence_median_pct, Some(2.0));
    }

    #[test]
    fn paper_app_groups_carry_a_roofline() {
        let rep = Report::build(&[measured("poisson2d", 1_000_000)]);
        let rl = rep.configs[0].roofline.as_ref().expect("roofline");
        assert!(rl.ideal_cycles > 0);
        assert_eq!(rl.bound, "Memory");
    }

    #[test]
    fn aggregation_sums_every_stall_class_into_the_roofline() {
        // a sharded, communication-bound record: exchange must survive the
        // per-config stall summation (each class is summed by name, so a
        // class dropped here would silently zero its attribution column)
        let mut r = measured("poisson2d", 1_000_000);
        r.devices = 2;
        r.stalls.memory_cycles = 0;
        r.stalls.exchange_cycles = 96;
        r.stalls.checkpoint_cycles = 32;
        let rep = Report::build(&[r]);
        let rl = rep.configs[0].roofline.as_ref().expect("roofline");
        assert_eq!(rl.bound, "Exchange");
        assert_eq!(rl.attribution.attributed_cycles, 96 + 32);
        assert_eq!(rl.attribution.exchange_pct, 75.0);
    }

    #[test]
    fn fault_records_aggregate_counters_without_roofline() {
        let mut r = RunRecord::empty(RunKind::Faults, "rtm3d");
        r.fault_counters.insert("injected".into(), 10);
        let mut s = r.clone();
        s.fault_counters.insert("injected".into(), 7);
        let rep = Report::build(&[r, s]);
        assert_eq!(rep.configs.len(), 1);
        assert_eq!(rep.configs[0].fault_counters.get("injected"), Some(&17));
        assert!(rep.configs[0].roofline.is_none());
    }

    #[test]
    fn report_roundtrips_and_rejects_foreign_schema() {
        let rep = Report::build(&[measured("jacobi3d", 2_000)]);
        let json = rep.to_json_string().expect("encode");
        let back = Report::from_json_str(&json).expect("decode");
        assert_eq!(back, rep);
        let bad = json.replace(REPORT_SCHEMA, "sf-report/v999");
        assert!(Report::from_json_str(&bad).is_err());
    }

    #[test]
    fn report_is_byte_reproducible_for_identical_stores() {
        let recs = vec![measured("poisson2d", 1_000_000), measured("jacobi3d", 9_999)];
        let a = Report::build(&recs).to_json_string().expect("encode");
        let b = Report::build(&recs).to_json_string().expect("encode");
        assert_eq!(a, b);
    }

    #[test]
    fn wall_time_never_reaches_the_report() {
        let mut fast = measured("poisson2d", 1_000_000);
        fast.wall_ms = Some(1.0);
        let mut slow = measured("poisson2d", 1_000_000);
        slow.wall_ms = Some(9_999.0);
        let a = Report::build(&[fast]).to_json_string().expect("encode");
        let b = Report::build(&[slow]).to_json_string().expect("encode");
        assert_eq!(a, b);
    }
}
