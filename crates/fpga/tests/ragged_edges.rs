//! Ragged-edge conformance for the lane-parallel fast path.
//!
//! The fast stage processors advance `sf_simd::LANES` cells per step and
//! fall back to a scalar epilogue for the ragged tail of each row, and to
//! whole-row/plane scalar evaluation on mesh boundaries. These tests pin
//! the stage-level contract on exactly the shapes where the epilogue and
//! boundary splits carry all the weight: widths that are not a multiple of
//! `LANES`, widths smaller than `LANES`, 1-wide and 1-tall degenerate
//! meshes, and multi-mesh streams whose seams force boundary re-entry —
//! in 2D and 3D. Every emitted row/plane must be bit-identical to the
//! scalar [`StageProcessor2D`]/[`StageProcessor3D`] fed the same stream.

use sf_fpga::fast::{FastStageProcessor2D, FastStageProcessor3D};
use sf_fpga::window::{StageProcessor2D, StageProcessor3D};
use sf_kernels::{LaneOp2D, LaneOp3D, Poisson2D, StarStencil2D, StarStencil3D};
use sf_mesh::{norms, Mesh2D, Mesh3D};
use sf_simd::LANES;

/// Stream `meshes` random 2D meshes through a scalar and a fast stage and
/// demand bit-identical rows at every step (incremental emissions, drain,
/// and window-fill gauge alike).
fn conform_2d<K: LaneOp2D<f32> + Clone>(k: K, nx: usize, ny: usize, meshes: usize, seed: u64) {
    let stream_rows = ny * meshes;
    let mut scalar = StageProcessor2D::new(k.clone(), nx, stream_rows, ny);
    let mut fast = FastStageProcessor2D::new(k, nx, stream_rows, ny);
    let tag = format!("{nx}x{ny} x{meshes} meshes");
    for m in 0..meshes {
        let mesh = Mesh2D::<f32>::random(nx, ny, seed + m as u64, -1.0, 1.0);
        for j in 0..ny {
            let row = mesh.as_slice()[j * nx..(j + 1) * nx].to_vec();
            let a = scalar.push_row(row.clone());
            let b = fast.push_row(row);
            assert_eq!(a.is_some(), b.is_some(), "emission schedule diverged ({tag})");
            if let (Some(a), Some(b)) = (&a, &b) {
                assert!(norms::bit_equal(a, b), "row differs mid-stream ({tag})");
            }
            assert_eq!(scalar.window_fill(), fast.window_fill(), "window fill ({tag})");
        }
    }
    let da = scalar.finish();
    let db = fast.finish();
    assert_eq!(da.len(), db.len(), "drain length ({tag})");
    for (a, b) in da.iter().zip(db.iter()) {
        assert!(norms::bit_equal(a, b), "drained row differs ({tag})");
    }
}

/// 3D counterpart of [`conform_2d`]: planes in, planes out.
fn conform_3d<K: LaneOp3D<f32> + Clone>(
    k: K,
    nx: usize,
    ny: usize,
    nz: usize,
    meshes: usize,
    seed: u64,
) {
    let stream_planes = nz * meshes;
    let mut scalar = StageProcessor3D::new(k.clone(), nx, ny, stream_planes, nz);
    let mut fast = FastStageProcessor3D::new(k, nx, ny, stream_planes, nz);
    let tag = format!("{nx}x{ny}x{nz} x{meshes} meshes");
    for m in 0..meshes {
        let mesh = Mesh3D::<f32>::random(nx, ny, nz, seed + m as u64, -1.0, 1.0);
        for zp in 0..nz {
            let plane = mesh.as_slice()[zp * nx * ny..(zp + 1) * nx * ny].to_vec();
            let a = scalar.push_plane(plane.clone());
            let b = fast.push_plane(plane);
            assert_eq!(a.is_some(), b.is_some(), "emission schedule diverged ({tag})");
            if let (Some(a), Some(b)) = (&a, &b) {
                assert!(norms::bit_equal(a, b), "plane differs mid-stream ({tag})");
            }
            assert_eq!(scalar.window_fill(), fast.window_fill(), "window fill ({tag})");
        }
    }
    let da = scalar.finish();
    let db = fast.finish();
    assert_eq!(da.len(), db.len(), "drain length ({tag})");
    for (a, b) in da.iter().zip(db.iter()) {
        assert!(norms::bit_equal(a, b), "drained plane differs ({tag})");
    }
}

/// A radius-2 star so the boundary margin and epilogue interact with a
/// deeper window than Poisson's radius 1.
fn star_r2() -> StarStencil2D {
    StarStencil2D::laplace9_order4(0.1, 0.4)
}

fn star3_r2() -> StarStencil3D {
    // 4th-order second-derivative weights (center, ±1, ±2) → radius 2
    StarStencil3D::high_order(&[-30.0 / 12.0, 16.0 / 12.0, -1.0 / 12.0], 0.05, 0.7)
}

#[test]
fn ragged_width_2d_not_multiple_of_lanes() {
    // interior width (nx − 2r) deliberately not a multiple of LANES
    for nx in [LANES + 1, 2 * LANES - 3, 3 * LANES + 5] {
        conform_2d(Poisson2D, nx, 9, 1, 101);
        conform_2d(star_r2(), nx, 9, 1, 102);
    }
}

#[test]
fn exact_multiple_width_2d_has_no_epilogue_gap() {
    // nx a multiple of LANES still leaves a ragged interior (nx − 2r);
    // both the full-lane and the all-epilogue split must agree
    conform_2d(Poisson2D, 4 * LANES, 12, 1, 103);
    conform_2d(star_r2(), 2 * LANES, 12, 1, 104);
}

#[test]
fn narrow_2d_meshes_below_lane_width() {
    // nx < LANES: the lane loop never fires, everything is epilogue +
    // boundary
    for nx in [2, 3, LANES - 1] {
        conform_2d(Poisson2D, nx, 8, 1, 105);
    }
    conform_2d(star_r2(), LANES - 2, 10, 1, 106);
}

#[test]
fn degenerate_1_wide_and_1_tall_2d() {
    conform_2d(Poisson2D, 1, 7, 1, 107); // every cell is a boundary cell
    conform_2d(Poisson2D, 23, 1, 1, 108); // single boundary row
    conform_2d(star_r2(), 1, 6, 1, 109);
    conform_2d(star_r2(), 17, 1, 1, 110);
    conform_2d(Poisson2D, 1, 1, 1, 111); // 1×1: fully degenerate
}

#[test]
fn multi_mesh_2d_stream_reenters_boundaries_at_seams() {
    conform_2d(Poisson2D, LANES + 3, 5, 3, 112);
    conform_2d(star_r2(), 2 * LANES + 1, 6, 2, 113);
}

#[test]
fn radius_wider_than_mesh_2d_is_all_boundary() {
    // nx < r and nx < 2r: the interior split degenerates to nothing
    conform_2d(star_r2(), 1, 8, 1, 114);
    conform_2d(star_r2(), 3, 8, 1, 115);
    conform_2d(star_r2(), 4, 8, 1, 116);
}

#[test]
fn ragged_width_3d_not_multiple_of_lanes() {
    use sf_kernels::Jacobi3D;
    for nx in [LANES + 1, 2 * LANES - 3] {
        conform_3d(Jacobi3D::smoothing(), nx, 7, 6, 1, 201);
    }
    conform_3d(star3_r2(), LANES + 5, 8, 7, 1, 202);
}

#[test]
fn narrow_and_degenerate_3d_meshes() {
    use sf_kernels::Jacobi3D;
    let k = Jacobi3D::smoothing();
    conform_3d(k, 3, 5, 5, 1, 203); // nx < LANES
    conform_3d(k, 1, 6, 5, 1, 204); // 1-wide
    conform_3d(k, 11, 1, 5, 1, 205); // 1-tall rows: every row is boundary
    conform_3d(k, 11, 6, 1, 1, 206); // single plane: all boundary
    conform_3d(k, 1, 1, 1, 1, 207); // fully degenerate
    conform_3d(star3_r2(), 4, 6, 6, 1, 208); // nx == 2r: no interior cells
}

#[test]
fn multi_mesh_3d_stream_reenters_boundaries_at_seams() {
    use sf_kernels::Jacobi3D;
    conform_3d(Jacobi3D::smoothing(), LANES + 2, 6, 4, 3, 209);
    conform_3d(star3_r2(), LANES + 1, 7, 6, 2, 210);
}

/// Executor-level ragged check: the public fast entry point agrees with the
/// scalar executor on a width with both a lane body and a ragged tail.
#[test]
fn executor_level_ragged_2d_and_3d() {
    use sf_fpga::design::{synthesize, ExecMode, MemKind, Workload};
    use sf_fpga::{exec2d, exec3d, fast, FpgaDevice};
    use sf_kernels::{Jacobi3D, StencilSpec};
    use sf_mesh::{Batch2D, Batch3D};

    let dev = FpgaDevice::u280();
    let nx = 3 * LANES + 3;
    let wl = Workload::D2 { nx, ny: 11, batch: 1 };
    let ds = synthesize(&dev, &StencilSpec::poisson(), 1, 2, ExecMode::Baseline, MemKind::Hbm, &wl)
        .unwrap();
    let input = Batch2D::<f32>::random(nx, 11, 1, 42, -1.0, 1.0);
    let (scalar, _) = exec2d::simulate_2d(&dev, &ds, &[Poisson2D], &input, 7);
    let (fast_out, _) = fast::simulate_2d_fast(&dev, &ds, &[Poisson2D], &input, 7);
    assert!(norms::bit_equal(scalar.as_slice(), fast_out.as_slice()));

    let nx3 = 2 * LANES + 5;
    let wl3 = Workload::D3 { nx: nx3, ny: 7, nz: 6, batch: 1 };
    let ds3 =
        synthesize(&dev, &StencilSpec::jacobi(), 1, 2, ExecMode::Baseline, MemKind::Hbm, &wl3)
            .unwrap();
    let input3 = Batch3D::<f32>::random(nx3, 7, 6, 1, 43, -1.0, 1.0);
    let k = Jacobi3D::smoothing();
    let (scalar3, _) = exec3d::simulate_3d(&dev, &ds3, &[k], &input3, 4);
    let (fast3, _) = fast::simulate_3d_fast(&dev, &ds3, &[k], &input3, 4);
    assert!(norms::bit_equal(scalar3.as_slice(), fast3.as_slice()));
}
